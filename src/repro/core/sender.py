"""The UF-variation sender (Algorithm 1, sender side).

To send a "1" the sender drives the uncore frequency up for one
interval; to send a "0" it goes idle and lets the frequency decay.
Two drive mechanisms exist (Section 4.3.1):

* ``STALL`` — the pointer-chasing stalling loop (Listing 2): with the
  receiver as the only other active core, the stalled fraction exceeds
  1/3 and the PMU pins toward the maximum at full stepping speed.
* ``TRAFFIC`` — a heavy far-slice traffic loop (Listing 1): the
  interconnect demand alone targets the maximum frequency.  Immune to
  the active-core-dilution noise of Section 4.3.3.

The sender may own several cores (``stall multiple cores
simultaneously``, Section 4.3.3) to keep the stalled fraction above 1/3
despite other active processes.
"""

from __future__ import annotations

import enum

from ..cpu.activity import IDLE
from ..errors import ChannelError, PlacementError
from ..platform.system import System
from ..workloads.base import Workload
from ..workloads.loops import stalling_profile, traffic_profile


class SenderMode(enum.Enum):
    """How the sender drives the uncore frequency for a "1"."""

    STALL = "stall"
    TRAFFIC = "traffic"


class _SenderThread(Workload):
    """One sender core, toggled between mark (1) and space (0)."""

    def __init__(self, name: str, mode: SenderMode, hops: int,
                 domain: int = 0) -> None:
        super().__init__(name, domain)
        self.mode = mode
        self.hops = hops
        self._target_slice: int | None = None

    def on_attach(self) -> None:
        socket = self.system.socket(self.socket_id)
        candidates = socket.mesh.slices_at_distance(self.core_id, self.hops)
        if not candidates:
            raise PlacementError(
                f"{self.name}: no slice at distance {self.hops} from "
                f"core {self.core_id}"
            )
        self._target_slice = candidates[0]

    def mark(self) -> None:
        """Drive the uncore (send a 1)."""
        if self.mode is SenderMode.STALL:
            self.apply_profile(stalling_profile(self.hops),
                               self._target_slice)
        else:
            self.apply_profile(traffic_profile(self.hops),
                               self._target_slice)

    def space(self) -> None:
        """Go idle (send a 0)."""
        self.apply_profile(IDLE)


class UFSender:
    """The sending endpoint: one or more driven cores on one socket."""

    def __init__(self, system: System, *, socket_id: int = 0,
                 core_ids: tuple[int, ...] = (0,),
                 mode: SenderMode = SenderMode.STALL,
                 hops: int = 3, domain: int = 0) -> None:
        if not core_ids:
            raise ChannelError("sender needs at least one core")
        self.system = system
        self.socket_id = socket_id
        self.mode = mode
        self.threads: list[_SenderThread] = []
        for index, core_id in enumerate(core_ids):
            thread = _SenderThread(
                f"uf-sender-{socket_id}.{core_id}", mode, hops, domain
            )
            thread.attach(system, socket_id, core_id)
            thread.start()
            thread.space()
            self.threads.append(thread)

    def drive(self, bit: int) -> None:
        """Start transmitting ``bit`` for the current interval."""
        if bit not in (0, 1):
            raise ChannelError(f"bits are 0 or 1, got {bit!r}")
        for thread in self.threads:
            if bit:
                thread.mark()
            else:
                thread.space()

    def shutdown(self) -> None:
        """Stop all sender threads and release their cores."""
        for thread in self.threads:
            thread.stop()
            thread.detach()
        self.threads.clear()
