"""Channel reliability under background noise (Table 2).

Runs UF-variation while ``stress-ng --cache N`` equivalents hammer the
same socket, reproducing Table 2: capacity decays with N and the
channel stops functioning around N = 9 on a 16-core socket.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PlatformConfig
from ..engine.parallel import Trial, run_trials
from ..platform.system import System
from ..units import ms
from ..workloads.stressor import launch_stressor_threads
from .channel import UFVariationChannel
from .context import ExperimentContext
from .evaluation import random_bits
from .protocol import ChannelConfig
from .sender import SenderMode


@dataclass(frozen=True)
class StressCapacityResult:
    """Channel performance with N background stressor threads."""

    stress_threads: int
    interval_ms: float
    error_rate: float
    capacity_bps: float


def capacity_under_stress(
    stress_threads: int,
    *,
    bits: int = 120,
    interval_ms: float = 60.0,
    seed: int = 0,
    platform: PlatformConfig | None = None,
    workers: int | None = 1,
    context: ExperimentContext | None = None,
    sender_mode: SenderMode = SenderMode.STALL,
    sender_cores: tuple[int, ...] = (0, 1, 2, 3, 4, 5),
) -> StressCapacityResult:
    """Measure one Table 2 cell.

    The sender stalls several cores (Section 4.3.3: "on a 16-core
    processor, if the sender stalls 6 cores, then it is guaranteed that
    over 1/3 active cores are stalled") so the active-core dilution from
    the stressor threads cannot mask a "1".  The remaining errors come
    from stressor phases that pin the uncore at freq_max during "0"s.

    One cell is a single deployment, so ``workers`` is accepted for
    signature uniformity but unused (see :func:`stress_table` for the
    fanned-out study).
    """
    ctx = ExperimentContext.coalesce(
        context, platform=platform, seed=seed, workers=workers
    )
    seed = ctx.seed
    system = System(ctx.platform, seed=seed)
    config = ChannelConfig(interval_ns=ms(interval_ms))
    channel = UFVariationChannel(
        system,
        config=config,
        sender_cores=sender_cores,
        receiver_core=8,
        sender_mode=sender_mode,
    )
    if stress_threads:
        launch_stressor_threads(
            system,
            stress_threads,
            socket_id=0,
            avoid_cores=set(sender_cores) | {8},
        )
        # Let the stressor phase schedules decorrelate from the start.
        system.run_ms(50)
    payload = random_bits(bits, seed, f"stress-{stress_threads}")
    result = channel.transmit(payload)
    channel.shutdown()
    system.stop()
    return StressCapacityResult(
        stress_threads=stress_threads,
        interval_ms=interval_ms,
        error_rate=result.error_rate,
        capacity_bps=result.capacity_bps,
    )


def stress_table(
    max_threads: int = 9,
    *,
    bits: int = 120,
    interval_ms: float = 60.0,
    seed: int = 0,
    platform: PlatformConfig | None = None,
    workers: int | None = 1,
    context: ExperimentContext | None = None,
) -> list[StressCapacityResult]:
    """The full Table 2 row: N = 1 .. max_threads.

    Every cell deploys its own seeded system, so the cells are
    independent trials: ``workers > 1`` fans them out across processes
    and returns the same list a serial run produces, in N order.
    """
    ctx = ExperimentContext.coalesce(
        context, platform=platform, seed=seed, workers=workers
    )
    trials = [
        Trial(capacity_under_stress, dict(
            stress_threads=n,
            bits=bits,
            interval_ms=interval_ms,
            seed=ctx.seed,
            platform=ctx.platform,
        ))
        for n in range(1, max_threads + 1)
    ]
    return run_trials(trials, workers=ctx.workers)
