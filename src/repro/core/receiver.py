"""The UF-variation receiver (Algorithm 1, receiver side).

An unprivileged actor that measures the average LLC latency in the
first and last ``measure_ns`` of each transmission interval and decodes
the bit from the latency trend (Section 4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..platform.system import System
from .probe import UncoreFrequencyProbe
from .protocol import ChannelConfig, ChannelEndpoints, decode_bit


@dataclass(frozen=True)
class IntervalObservation:
    """What the receiver saw during one transmission interval."""

    t1_cycles: float
    t2_cycles: float
    decoded: int


class UFReceiver:
    """The receiving endpoint: a probe plus the Algorithm 1 decoder."""

    def __init__(self, system: System, *, socket_id: int = 0,
                 core_id: int = 8, config: ChannelConfig | None = None,
                 endpoints: ChannelEndpoints | None = None,
                 domain: int = 0) -> None:
        self.system = system
        self.config = config if config is not None else ChannelConfig()
        self.config.validate()
        self.actor = system.create_actor(
            f"uf-receiver-{socket_id}.{core_id}", socket_id, core_id,
            domain=domain,
        )
        self.probe = UncoreFrequencyProbe(
            self.actor, hops=self.config.hops,
            list_size=self.config.list_size,
        )
        self.endpoints = endpoints
        self.observations: list[IntervalObservation] = []

    def receive_bit(self) -> int:
        """Run one interval's worth of measurement and decode the bit.

        The caller is responsible for interval alignment (the
        sender/receiver pair synchronise on the timestamp counter; the
        channel driver enforces the shared grid).
        """
        if self.endpoints is None:
            from ..errors import ChannelError

            raise ChannelError(
                "receiver is not calibrated: provide ChannelEndpoints "
                "(see core.protocol.calibrate_endpoints)"
            )
        config = self.config
        engine = self.system.engine
        interval_end = engine.now + config.interval_ns
        t1 = self.probe.measure_avg_latency(config.measure_ns)
        wait_until = interval_end - config.measure_ns
        if wait_until > engine.now:
            engine.run_for(wait_until - engine.now)
        t2 = self.probe.measure_avg_latency(config.measure_ns)
        if interval_end > engine.now:
            engine.run_for(interval_end - engine.now)
        decoded = decode_bit(t1, t2, self.endpoints, config)
        self.observations.append(IntervalObservation(t1, t2, decoded))
        return decoded

    def shutdown(self) -> None:
        """Release the receiver's core."""
        self.actor.retire()
