"""The UF-variation channel protocol (Algorithm 1).

One bit per transmission interval.  The receiver compares the average
LLC latency near the beginning of the interval (T1) with the average
near the end (T2):

* ``T2 < T1``            → frequency rising          → bit 1
* ``T1 ~ T2 ~ T_freq_max`` → pinned at the maximum   → bit 1
* ``T2 > T1``            → frequency falling         → bit 0
* ``T1 ~ T2 ~ T_freq_min`` → resting at the minimum  → bit 0

``T_freq_max`` / ``T_freq_min`` are the pre-agreed calibration inputs
of Algorithm 1 — the latencies at the extreme active frequencies for
the receiver's probing distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PlatformConfig
from ..errors import ChannelError
from ..platform.latency import LatencyModel
from ..units import ms


@dataclass(frozen=True)
class ChannelConfig:
    """Tunable parameters of one UF-variation deployment."""

    interval_ns: int = ms(21)
    #: Length of each of the two measurement windows; the paper's
    #: receiver averages "the first and last 5 ms" of an interval.
    measure_ns: int = ms(5)
    #: Slack around the calibrated extremes when testing "at the
    #: extreme level" (one-sided; see :func:`decode_bit`).
    flat_tolerance_cycles: float = 2.0
    #: Minimum T1-T2 gap to call a trend.
    trend_margin_cycles: float = 0.8
    #: Probing distance of the receiver's eviction list (Figure 9 uses
    #: 1-hop latencies).
    hops: int = 1
    #: Addresses per measurement list (Listing 3).
    list_size: int = 20

    def validate(self) -> None:
        if self.interval_ns < 2 * self.measure_ns:
            raise ChannelError(
                "interval too short for two measurement windows"
            )
        if self.hops < 0 or self.list_size < 1:
            raise ChannelError("invalid probe geometry")

    @property
    def raw_rate_bps(self) -> float:
        """Raw transmission rate implied by the interval length."""
        return 1e9 / self.interval_ns


@dataclass(frozen=True)
class ChannelEndpoints:
    """The Algorithm 1 calibration inputs for one deployment."""

    t_freq_max_cycles: float
    t_freq_min_cycles: float

    def __post_init__(self) -> None:
        if self.t_freq_max_cycles >= self.t_freq_min_cycles:
            raise ChannelError(
                "latency at freq_max must be below latency at freq_min"
            )

    @property
    def midpoint(self) -> float:
        return (self.t_freq_max_cycles + self.t_freq_min_cycles) / 2.0


def calibrate_endpoints(
    platform: PlatformConfig,
    latency_model: LatencyModel,
    *,
    hops: int,
    cross_processor: bool = False,
) -> ChannelEndpoints:
    """Compute the pre-agreed T_freq_max / T_freq_min calibration.

    ``freq_min`` is the minimum *active* frequency (the 1.5 GHz dither
    ceiling), not the MSR lower limit — the uncore never rests below it
    while the receiver keeps its core busy.  In the cross-processor
    deployment the receiver's socket is a coupling follower and peaks
    one step below the sender's socket (Section 3.4), so its effective
    maximum is lower by the coupling lag.
    """
    ufs = platform.ufs
    max_mhz = ufs.max_freq_mhz
    if cross_processor and platform.cross_socket_coupling:
        max_mhz = max(max_mhz - platform.coupling_lag_mhz,
                      ufs.min_freq_mhz)
    min_active = min(
        max(ufs.active_idle_high_mhz, ufs.min_freq_mhz), ufs.max_freq_mhz
    )
    if max_mhz <= min_active:
        # Degenerate window (e.g. the fixed-frequency countermeasure):
        # report a hair of separation so decoding falls through to the
        # trend rule and the channel's failure shows up as a 50 % BER
        # rather than a crash.
        return ChannelEndpoints(
            t_freq_max_cycles=latency_model.mean_llc_cycles(hops, max_mhz)
            - 1e-6,
            t_freq_min_cycles=latency_model.mean_llc_cycles(hops, max_mhz),
        )
    return ChannelEndpoints(
        t_freq_max_cycles=latency_model.mean_llc_cycles(hops, max_mhz),
        t_freq_min_cycles=latency_model.mean_llc_cycles(hops, min_active),
    )


def decode_bit(t1: float, t2: float, endpoints: ChannelEndpoints,
               config: ChannelConfig) -> int:
    """Algorithm 1's receiver decision.

    The "at the extreme" tests are one-sided: any latency at or *below*
    the freq_max calibration means the uncore is pinned at the maximum
    (bit 1), and any latency at or *above* the freq_min calibration
    means it is resting at — or dithering just below — the minimum
    active frequency (bit 0).  The one-sidedness matters because the
    idle uncore alternates between 1.4 and 1.5 GHz (Section 3.1), so a
    resting "0" produces latencies slightly above T_freq_min.
    """
    tol = config.flat_tolerance_cycles
    ceiling = endpoints.t_freq_max_cycles + tol
    floor = endpoints.t_freq_min_cycles - tol
    if t1 <= ceiling and t2 <= ceiling:
        return 1
    if t1 >= floor and t2 >= floor:
        return 0
    if t2 < t1 - config.trend_margin_cycles:
        return 1
    if t2 > t1 + config.trend_margin_cycles:
        return 0
    # Ambiguous (flat somewhere mid-range, or noise-drowned trend):
    # fall back to the bare trend sign.
    return 1 if t2 <= t1 else 0
