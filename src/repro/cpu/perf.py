"""Perf-style counters derived from a core's activity timeline.

Section 3.2 identifies stalled cores by the ratio of the
``cycle_activity.stalls_mem_any`` counter to ``cycles``: 0.77 for the
pointer-chasing loop, 0.30 for the traffic loop, 0.14 for L2-resident
chasing.  The simulator derives both counters exactly from the
piecewise-constant profile history, so ``stall_ratio()`` returns the
same quantity the paper measured with the Linux perf tools.
"""

from __future__ import annotations

from dataclasses import dataclass

from .core import Core


@dataclass(frozen=True)
class CounterSample:
    """A snapshot of the two counters over a window."""

    cycles: float
    stalls_mem_any: float

    @property
    def stall_ratio(self) -> float:
        """``stalls_mem_any / cycles`` — the paper's stall metric."""
        return self.stalls_mem_any / self.cycles if self.cycles else 0.0


class PerfCounters:
    """Reads counter windows off a core's timeline."""

    def __init__(self, core: Core) -> None:
        self.core = core

    def sample(self, t0_ns: int, t1_ns: int) -> CounterSample:
        """Counters accumulated over ``[t0, t1)``.

        ``cycles`` counts only time the core was in C0 (halted cycles do
        not tick the counter), at the core's current frequency.
        """
        stats = self.core.timeline.window_stats(t0_ns, t1_ns)
        elapsed_us = (t1_ns - t0_ns) / 1_000.0
        cycles = stats.active_fraction * elapsed_us * self.core.freq_mhz
        stalls = cycles * stats.stall_ratio
        return CounterSample(cycles=cycles, stalls_mem_any=stalls)

    def stall_ratio(self, t0_ns: int, t1_ns: int) -> float:
        """Convenience wrapper matching the paper's reported metric."""
        return self.sample(t0_ns, t1_ns).stall_ratio
