"""The per-core model: activity timeline, P-state and C-state.

A core does not execute instructions in the macroscopic simulation — it
*carries a profile* set by whichever workload is pinned to it.  C-state
selection follows the usual OS heuristic: an idle core sinks into a
deeper state the longer it stays idle, and the package C-state (managed
by the socket) can never be deeper than the shallowest core C-state
(Section 2.2.2).
"""

from __future__ import annotations

from ..errors import PlacementError
from .activity import IDLE, ActivityProfile, ProfileTimeline


class Core:
    """One CPU core: identity, placement and activity history."""

    def __init__(self, core_id: int, socket_id: int,
                 tile: tuple[int, int], base_freq_mhz: int) -> None:
        self.core_id = core_id
        self.socket_id = socket_id
        self.tile = tile
        self.base_freq_mhz = base_freq_mhz
        # Powersave governor: cores run at (or below) base frequency,
        # which is the regime where UFS is enabled at all (Section 2.2.1).
        # set_p_state() can raise this above base (turbo), which pins
        # the uncore at its maximum.
        self.freq_mhz = base_freq_mhz
        self.timeline = ProfileTimeline()
        self._owner: str | None = None
        self._idle_since: int = 0

    # -- thread placement ---------------------------------------------------

    @property
    def owner(self) -> str | None:
        """Name of the workload currently pinned here, if any."""
        return self._owner

    def claim(self, owner: str) -> None:
        """Pin a workload to this core; cores are exclusively owned."""
        if self._owner is not None:
            raise PlacementError(
                f"core {self.core_id} (socket {self.socket_id}) already "
                f"runs {self._owner!r}; cannot also run {owner!r}"
            )
        self._owner = owner

    def release(self, time_ns: int) -> None:
        """Unpin the current workload and return the core to idle."""
        self._owner = None
        self.set_profile(time_ns, IDLE)

    # -- activity -------------------------------------------------------------

    def set_profile(self, time_ns: int, profile: ActivityProfile) -> None:
        """Record a behaviour change of the pinned workload."""
        self.timeline.set_profile(time_ns, profile)
        if not profile.active:
            self._idle_since = time_ns

    def set_p_state(self, freq_mhz: int) -> None:
        """Select the core's P-state (100 MHz operating points).

        With SpeedStep the OS picks this; above ``base_freq_mhz`` the
        core is in a turbo state, which disables UFS socket-wide
        (Section 2.2.1: "When at least one core is running at a higher
        frequency, the uncore consistently stays at the maximum").
        """
        if freq_mhz <= 0 or freq_mhz % 100 != 0:
            raise PlacementError(
                f"P-states are positive 100 MHz points, got {freq_mhz}"
            )
        self.freq_mhz = freq_mhz

    @property
    def above_base(self) -> bool:
        """Whether the core is in a turbo P-state."""
        return self.freq_mhz > self.base_freq_mhz

    def profile_at(self, time_ns: int) -> ActivityProfile:
        """The profile in force at a given time."""
        return self.timeline.profile_at(time_ns)

    def is_active(self, time_ns: int) -> bool:
        """Whether the core is in C0 at ``time_ns``."""
        return self.profile_at(time_ns).active

    # -- idle management --------------------------------------------------------

    def c_state(self, time_ns: int, exit_latencies_ns: tuple[int, ...]) -> int:
        """Current C-state index under the OS's depth-by-idle-time rule.

        An active core is in C0.  An idle core descends one state per
        ~10x of the next state's exit latency spent idle — a standard
        menu-governor-like heuristic.
        """
        if self.is_active(time_ns):
            return 0
        idle_ns = time_ns - self._idle_since
        state = 0
        for index in range(1, len(exit_latencies_ns)):
            if idle_ns >= 10 * exit_latencies_ns[index]:
                state = index
        return state

    def __repr__(self) -> str:
        return (
            f"Core(id={self.core_id}, socket={self.socket_id}, "
            f"tile={self.tile}, owner={self._owner!r})"
        )
