"""Activity profiles: the macroscopic description of a running thread.

A profile summarises what a loop does to the uncore per unit time:

* ``llc_rate_per_us`` — LLC accesses issued per microsecond,
* ``mean_hops`` — average core-to-slice mesh distance of those accesses,
* ``stall_ratio`` — fraction of core cycles stalled on memory
  (the paper's ``cycle_activity.stalls_mem_any / cycles``),
* ``l2_rate_per_us`` — private-cache traffic that never reaches the
  uncore (the "None" row of Figure 3).

A :class:`ProfileTimeline` records piecewise-constant profile changes so
any time window can be integrated *exactly* — no sampling error between
the 10 ms PMU evaluations.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class ActivityProfile:
    """Steady-state uncore-relevant behaviour of one thread."""

    active: bool = False
    llc_rate_per_us: float = 0.0
    mean_hops: float = 0.0
    stall_ratio: float = 0.0
    l2_rate_per_us: float = 0.0
    #: Relative draw on the socket's shared voltage regulator (0..1);
    #: power-virus loops set this to 1.  Feeds the current-management
    #: contention observable the IccCoresCovert baseline exploits.
    power_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.llc_rate_per_us < 0 or self.l2_rate_per_us < 0:
            raise SimulationError("access rates must be non-negative")
        if not 0.0 <= self.stall_ratio <= 1.0:
            raise SimulationError("stall ratio must be in [0, 1]")
        if self.mean_hops < 0:
            raise SimulationError("hop distance must be non-negative")

    @property
    def noc_score(self) -> float:
        """Hop-weighted traffic score ``rate * hops^2``.

        This is the quantity the calibrated demand model thresholds
        against (see :class:`repro.config.DemandModelConfig`).
        """
        return self.llc_rate_per_us * self.mean_hops**2


IDLE = ActivityProfile()


@dataclass(frozen=True)
class WindowStats:
    """Exact integrals of one timeline over a time window."""

    active_fraction: float
    llc_rate_per_us: float
    noc_score: float
    stall_ratio: float
    l2_rate_per_us: float

    @property
    def is_active(self) -> bool:
        """Active for the majority of the window."""
        return self.active_fraction > 0.5


class ProfileTimeline:
    """Piecewise-constant profile history with exact window integrals."""

    def __init__(self, initial: ActivityProfile = IDLE) -> None:
        self._times: list[int] = [0]
        self._profiles: list[ActivityProfile] = [initial]

    def set_profile(self, time_ns: int, profile: ActivityProfile) -> None:
        """Switch to ``profile`` at ``time_ns`` (monotone non-decreasing)."""
        if time_ns < self._times[-1]:
            raise SimulationError(
                f"profile change at {time_ns} ns precedes the last change "
                f"at {self._times[-1]} ns"
            )
        if time_ns == self._times[-1]:
            self._profiles[-1] = profile
            return
        self._times.append(time_ns)
        self._profiles.append(profile)

    def profile_at(self, time_ns: int) -> ActivityProfile:
        """The profile in force at ``time_ns``."""
        index = bisect.bisect_right(self._times, time_ns) - 1
        return self._profiles[max(index, 0)]

    def __len__(self) -> int:
        return len(self._times)

    def window_stats(self, t0: int, t1: int) -> WindowStats:
        """Exact time-weighted averages over ``[t0, t1)``."""
        if t1 <= t0:
            raise SimulationError(f"empty window [{t0}, {t1})")
        start = max(bisect.bisect_right(self._times, t0) - 1, 0)
        total = t1 - t0
        active_time = 0.0
        llc = 0.0
        noc = 0.0
        stall_weighted = 0.0
        l2 = 0.0
        index = start
        while index < len(self._times) and self._times[index] < t1:
            seg_start = max(self._times[index], t0)
            seg_end = (
                self._times[index + 1]
                if index + 1 < len(self._times)
                else t1
            )
            seg_end = min(seg_end, t1)
            if seg_end <= seg_start:
                index += 1
                continue
            weight = seg_end - seg_start
            profile = self._profiles[index]
            if profile.active:
                active_time += weight
                stall_weighted += profile.stall_ratio * weight
            llc += profile.llc_rate_per_us * weight
            noc += profile.noc_score * weight
            l2 += profile.l2_rate_per_us * weight
            index += 1
        stall_ratio = stall_weighted / active_time if active_time else 0.0
        return WindowStats(
            active_fraction=active_time / total,
            llc_rate_per_us=llc / total,
            noc_score=noc / total,
            stall_ratio=stall_ratio,
            l2_rate_per_us=l2 / total,
        )

    def trim_before(self, time_ns: int) -> None:
        """Drop history strictly before ``time_ns`` (memory bound).

        Keeps the profile in force at ``time_ns`` as the new epoch.
        """
        index = bisect.bisect_right(self._times, time_ns) - 1
        if index <= 0:
            return
        self._times = [time_ns] + self._times[index + 1:]
        self._profiles = self._profiles[index:]
