"""Model-specific registers relevant to UFS.

Two registers matter to the paper (Section 2.2.1 and Figure 1):

* ``UNCORE_RATIO_LIMIT`` (0x620) — bits 0-6 hold the *maximum* uncore
  ratio and bits 8-14 the *minimum*, both in 100 MHz units.  The OS
  constrains UFS by writing it; setting min == max disables UFS, which
  is the "fix the uncore frequency" countermeasure of Section 6.1.
* ``U_PMON_UCLK_FIXED_CTR`` (0x704) — increments once per uncore clock
  tick; reading it twice across a known wall-clock gap recovers the
  uncore frequency, which is how Section 3 gathers its traces.

MSR access is privileged: reads and writes from an unprivileged actor
raise :class:`~repro.errors.PrivilegeError`, which is exactly why the
paper's *receiver* needs the latency-based frequency probe instead
(Section 4.2).
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import PrivilegeError, SimulationError

MSR_UNCORE_RATIO_LIMIT = 0x620
MSR_UCLK_FIXED_CTR = 0x704

_RATIO_UNIT_MHZ = 100


def encode_uncore_ratio_limit(min_freq_mhz: int, max_freq_mhz: int) -> int:
    """Pack (min, max) uncore frequencies into the Figure 1 layout."""
    if min_freq_mhz % _RATIO_UNIT_MHZ or max_freq_mhz % _RATIO_UNIT_MHZ:
        raise SimulationError("uncore ratios are in 100 MHz units")
    max_ratio = max_freq_mhz // _RATIO_UNIT_MHZ
    min_ratio = min_freq_mhz // _RATIO_UNIT_MHZ
    if not 0 <= max_ratio < 128 or not 0 <= min_ratio < 128:
        raise SimulationError("uncore ratios are 7-bit fields")
    return (min_ratio << 8) | max_ratio


def decode_uncore_ratio_limit(value: int) -> tuple[int, int]:
    """Unpack the Figure 1 layout into (min_mhz, max_mhz)."""
    max_ratio = value & 0x7F
    min_ratio = (value >> 8) & 0x7F
    return min_ratio * _RATIO_UNIT_MHZ, max_ratio * _RATIO_UNIT_MHZ


class MsrFile:
    """One socket's MSR space with static values and dynamic providers.

    Dynamic registers (the uclk counter) are backed by provider
    callables so the value reflects simulation state at read time.
    Write listeners let the PMU react to ``UNCORE_RATIO_LIMIT`` updates.
    """

    def __init__(self, socket_id: int) -> None:
        self.socket_id = socket_id
        self._values: dict[int, int] = {}
        self._providers: dict[int, Callable[[], int]] = {}
        self._write_listeners: dict[int, list[Callable[[int], None]]] = {}

    def register_provider(self, address: int,
                          provider: Callable[[], int]) -> None:
        """Back ``address`` with a dynamic value source."""
        self._providers[address] = provider

    def add_write_listener(self, address: int,
                           listener: Callable[[int], None]) -> None:
        """Invoke ``listener(value)`` after each write to ``address``."""
        self._write_listeners.setdefault(address, []).append(listener)

    def read(self, address: int, *, privileged: bool) -> int:
        """rdmsr.  Unprivileged access raises :class:`PrivilegeError`."""
        if not privileged:
            raise PrivilegeError(
                f"rdmsr 0x{address:x} on socket {self.socket_id} requires "
                "ring 0"
            )
        if address in self._providers:
            return self._providers[address]()
        if address in self._values:
            return self._values[address]
        raise SimulationError(
            f"unimplemented MSR 0x{address:x} on socket {self.socket_id}"
        )

    def write(self, address: int, value: int, *, privileged: bool) -> None:
        """wrmsr.  Unprivileged access raises :class:`PrivilegeError`."""
        if not privileged:
            raise PrivilegeError(
                f"wrmsr 0x{address:x} on socket {self.socket_id} requires "
                "ring 0"
            )
        self._values[address] = value
        for listener in self._write_listeners.get(address, []):
            listener(value)
