"""Core-frequency (P-state) governors.

Section 2.2.1: Intel cores pick P-states through SpeedStep (OS-driven)
or SpeedShift (hardware-driven with OS hints), and — crucially for the
paper — **UFS only operates while every active core runs at or below
the base frequency**.  The experiments therefore use the ``powersave``
governor (Table 1).  This module models the governor layer:

* ``POWERSAVE`` — all cores at base frequency (the paper's setup);
* ``PERFORMANCE`` — active cores at the turbo ceiling, which pins the
  uncore at its maximum and *implicitly disables the UFS channel*;
* ``ONDEMAND`` — cores sprint to turbo while busy and drop to base
  when idle, so the uncore is pinned exactly while anything runs.
"""

from __future__ import annotations

import enum

from ..engine import PeriodicTask
from ..errors import ConfigError
from ..units import ms


class GovernorPolicy(enum.Enum):
    """The OS frequency-selection policy."""

    POWERSAVE = "powersave"
    PERFORMANCE = "performance"
    ONDEMAND = "ondemand"


class DvfsGovernor:
    """Periodically re-selects P-states for one socket's cores."""

    def __init__(self, system, *, socket_id: int = 0,
                 policy: GovernorPolicy = GovernorPolicy.POWERSAVE,
                 turbo_mhz: int = 3200,
                 period_ms: float = 10.0) -> None:
        socket = system.socket(socket_id)
        if turbo_mhz < socket.config.base_freq_mhz:
            raise ConfigError("turbo frequency below base frequency")
        if turbo_mhz % 100:
            raise ConfigError("P-states are 100 MHz operating points")
        self.system = system
        self.socket = socket
        self.policy = policy
        self.turbo_mhz = turbo_mhz
        self._task = PeriodicTask(
            system.engine, ms(period_ms), self._evaluate,
            name=f"dvfs-governor-{socket_id}",
        )
        self._evaluate()

    def _evaluate(self) -> None:
        now = self.system.now
        base = self.socket.config.base_freq_mhz
        for core in self.socket.cores:
            if self.policy is GovernorPolicy.POWERSAVE:
                target = base
            elif self.policy is GovernorPolicy.PERFORMANCE:
                target = self.turbo_mhz
            else:  # ONDEMAND: sprint while the core has work
                target = self.turbo_mhz if core.is_active(now) else base
            if core.freq_mhz != target:
                core.set_p_state(target)

    def set_policy(self, policy: GovernorPolicy) -> None:
        """Switch policy; takes effect at once."""
        self.policy = policy
        self._evaluate()

    def stop(self) -> None:
        """Stop re-evaluating (cores keep their last P-state)."""
        self._task.stop()
