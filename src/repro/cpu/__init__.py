"""CPU cores, activity accounting, MSRs and perf counters.

The *activity profile* abstraction is the macroscopic half of the
simulator: every running thread exposes its steady-state behaviour (LLC
access rate, mean hop distance, memory-stall ratio) and each core keeps
a timeline of profile changes.  The UFS power-management unit integrates
these timelines every evaluation period — exactly the inputs Intel's
patent describes (uncore utilisation and core stall time, Section 3).
"""

from .activity import (
    IDLE,
    ActivityProfile,
    ProfileTimeline,
    WindowStats,
)
from .core import Core
from .msr import (
    MSR_UNCORE_RATIO_LIMIT,
    MSR_UCLK_FIXED_CTR,
    MsrFile,
    decode_uncore_ratio_limit,
    encode_uncore_ratio_limit,
)
from .perf import PerfCounters

__all__ = [
    "ActivityProfile",
    "Core",
    "IDLE",
    "MSR_UCLK_FIXED_CTR",
    "MSR_UNCORE_RATIO_LIMIT",
    "MsrFile",
    "PerfCounters",
    "ProfileTimeline",
    "WindowStats",
    "decode_uncore_ratio_limit",
    "encode_uncore_ratio_limit",
]
