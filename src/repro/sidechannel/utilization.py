"""The *other* UFS side channel: profiling by uncore utilization.

Section 5 of the paper notes that "the two factors that affect the
uncore frequency (uncore utilization and core stalling) can both be
used to construct side-channel attacks" and then builds only the
stalling-based one.  This module implements the first factor as an
extension: the attacker runs *no* helper threads, leaves the uncore at
its idle dither, and watches the frequency **rise** whenever the victim
places real demand on the LLC or the interconnect (Figure 3's
mechanism).

Where the stalling methodology inverts core activity (busy victim →
frequency drop), the utilization methodology reads uncore demand
directly (memory-heavy victim phase → frequency rise), so it can
distinguish a victim's *compute* phases from its *memory* phases — a
signal the helper-thread attack cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.probe import UncoreFrequencyProbe
from ..cpu.activity import ActivityProfile
from ..platform.system import System
from ..units import ms
from ..workloads.base import PhasedWorkload
from .tracer import FrequencyTraceCollector, TraceRecord


class UtilizationAttacker:
    """A probe-only attacker (no helper threads)."""

    def __init__(self, system: System, *, socket_id: int = 0,
                 probe_core: int = 2, probe_hops: int = 1) -> None:
        self.system = system
        self.probe_actor = system.create_actor(
            "utilization-probe", socket_id, probe_core
        )
        self.probe = UncoreFrequencyProbe(self.probe_actor,
                                          hops=probe_hops)

    def settle(self, duration_ms: float = 60.0) -> None:
        """Let the uncore rest at the idle dither before tracing."""
        self.system.run_ms(duration_ms)

    def shutdown(self) -> None:
        self.probe_actor.retire()


def memory_burst_profile(intensity: float = 1.0) -> ActivityProfile:
    """A victim phase with real uncore demand (streaming/scanning).

    A DRAM-bound scan both loads the LLC and stalls its core on the
    misses — with the system otherwise idle, the stalled core is the
    only active one, the >1/3 rule fires and the uncore ramps at full
    speed (the Figure 5 dynamics, driven by the victim itself).
    """
    return ActivityProfile(
        active=True,
        llc_rate_per_us=160.0 * intensity,
        mean_hops=1.0,
        stall_ratio=0.62,
    )


def compute_phase_profile() -> ActivityProfile:
    """A victim phase that is busy but cache-resident (no demand)."""
    return ActivityProfile(active=True, l2_rate_per_us=150.0,
                           stall_ratio=0.12)


class MediaEncoderVictim(PhasedWorkload):
    """A victim alternating memory-heavy scans and compute phases.

    Models a media encoder: read a frame (memory-heavy), encode it
    (compute-heavy), repeat.  The frame count and per-phase durations
    are the secret the attacker recovers.
    """

    def __init__(self, name: str, *, frames: int,
                 scan_ms: float = 60.0, encode_ms: float = 90.0,
                 domain: int = 0) -> None:
        self.frames = frames
        self.scan_ms = scan_ms
        self.encode_ms = encode_ms
        phases: list[tuple] = []
        for _ in range(frames):
            phases.append((ms(scan_ms), memory_burst_profile()))
            phases.append((ms(encode_ms), compute_phase_profile()))
        super().__init__(name, phases, repeat=False, domain=domain)


@dataclass(frozen=True)
class PhaseEstimate:
    """What the attacker recovered from one trace."""

    burst_count: int
    mean_burst_ms: float
    mean_gap_ms: float


def detect_bursts(trace: TraceRecord, *,
                  threshold_mhz: float = 1900.0,
                  min_samples: int = 3) -> PhaseEstimate:
    """Segment a trace into high-frequency bursts.

    A burst is a run of samples above ``threshold_mhz`` — the uncore
    only leaves its idle dither when the victim's demand pushes it up,
    so bursts map one-to-one onto the victim's memory phases.
    """
    high = trace.freqs_mhz > threshold_mhz
    step = (
        float(np.median(np.diff(trace.times_ms)))
        if len(trace.times_ms) > 1
        else 0.0
    )
    bursts: list[int] = []
    gaps: list[int] = []
    run = 0
    gap = 0
    for value in high:
        if value:
            if gap and bursts:
                gaps.append(gap)
            gap = 0
            run += 1
        else:
            if run >= min_samples:
                bursts.append(run)
            run = 0
            gap += 1
    if run >= min_samples:
        bursts.append(run)
    return PhaseEstimate(
        burst_count=len(bursts),
        mean_burst_ms=float(np.mean(bursts)) * step if bursts else 0.0,
        mean_gap_ms=float(np.mean(gaps)) * step if gaps else 0.0,
    )


def profile_victim(*, frames: int, scan_ms: float = 60.0,
                   encode_ms: float = 90.0, seed: int = 0,
                   victim_core: int = 5) -> PhaseEstimate:
    """Run the full utilization attack against one victim execution."""
    system = System(seed=seed)
    attacker = UtilizationAttacker(system)
    attacker.settle()
    victim = MediaEncoderVictim(
        "encoder", frames=frames, scan_ms=scan_ms, encode_ms=encode_ms
    )
    collector = FrequencyTraceCollector(attacker, sample_period_ms=3.0)
    system.launch(victim, 0, victim_core)
    duration = frames * (scan_ms + encode_ms) + 120.0
    trace = collector.collect(duration)
    system.terminate(victim)
    attacker.shutdown()
    system.stop()
    return detect_bursts(trace)
