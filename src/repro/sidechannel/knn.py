"""A k-nearest-neighbour baseline for the fingerprinting study.

Euclidean kNN over the binned activity waveforms.  Serves two roles:
a sanity check that the synthetic traces are learnable at all, and an
ablation partner for the RNN (the paper's classifier choice).
"""

from __future__ import annotations

import numpy as np


class KnnClassifier:
    """Plain Euclidean kNN with distance-weighted voting."""

    def __init__(self, k: int = 3, num_classes: int | None = None) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.num_classes = num_classes
        self._train_x: np.ndarray | None = None
        self._train_y: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Memorise the training set."""
        self._train_x = np.asarray(features, dtype=np.float64)
        self._train_y = np.asarray(labels, dtype=np.int64)
        if self.num_classes is None:
            self.num_classes = int(self._train_y.max()) + 1

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Class scores from distance-weighted neighbour votes."""
        if self._train_x is None:
            raise RuntimeError("classifier is not fitted")
        queries = np.asarray(features, dtype=np.float64)
        diffs = queries[:, None, :] - self._train_x[None, :, :]
        distances = np.sqrt((diffs**2).sum(axis=2))
        scores = np.zeros((len(queries), self.num_classes))
        k = min(self.k, self._train_x.shape[0])
        nearest = np.argsort(distances, axis=1)[:, :k]
        for row, neighbours in enumerate(nearest):
            for index in neighbours:
                weight = 1.0 / (distances[row, index] + 1e-9)
                scores[row, self._train_y[index]] += weight
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard top-1 predictions."""
        return self.predict_scores(features).argmax(axis=1)
