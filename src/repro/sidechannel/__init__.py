"""UFS-based side-channel attacks (Section 5).

The attack methodology: the attacker runs one *stalling* helper thread
and one *non-stalling* helper thread.  With the victim idle, the
stalled fraction of active cores exceeds 1/3 and the uncore pins at
``freq_max``; when the victim's core becomes active (but not stalled),
the fraction drops below 1/3 and the frequency falls.  The uncore
frequency trace — collected unprivileged through the latency probe —
therefore mirrors the victim's core activity.

Two attacks are built on this observable:

* **file-size profiling** — the busy duration of a compression job
  reveals the input size at 300 KB granularity (Figure 11);
* **website fingerprinting** — an RNN classifier recognises which of
  100 sites a browser victim is loading from a 5 s trace (Figure 12;
  82.18 % top-1 / 91.48 % top-5 in the paper).
"""

from .methodology import AttackHelpers, UfsAttacker
from .tracer import FrequencyTraceCollector, TraceRecord
from .filesize import (
    FileSizeProfiler,
    FileSizeStudy,
    ProfiledRun,
    run_filesize_study,
)
from .features import bin_trace, normalize_traces
from .rnn import RnnClassifier, RnnConfig
from .gru import GruClassifier
from .knn import KnnClassifier
from .utilization import (
    MediaEncoderVictim,
    PhaseEstimate,
    UtilizationAttacker,
    detect_bursts,
    profile_victim,
)
from .openworld import (
    OpenWorldResult,
    collect_open_world,
    evaluate_open_world,
)
from .fingerprint import (
    FingerprintDataset,
    FingerprintResult,
    collect_dataset,
    run_fingerprinting_study,
)

__all__ = [
    "AttackHelpers",
    "FileSizeProfiler",
    "FileSizeStudy",
    "ProfiledRun",
    "FingerprintDataset",
    "FingerprintResult",
    "FrequencyTraceCollector",
    "KnnClassifier",
    "MediaEncoderVictim",
    "OpenWorldResult",
    "PhaseEstimate",
    "GruClassifier",
    "RnnClassifier",
    "RnnConfig",
    "TraceRecord",
    "UfsAttacker",
    "UtilizationAttacker",
    "bin_trace",
    "collect_dataset",
    "collect_open_world",
    "evaluate_open_world",
    "normalize_traces",
    "detect_bursts",
    "profile_victim",
    "run_filesize_study",
    "run_fingerprinting_study",
]
