"""Feature extraction from frequency traces.

The classifiers consume fixed-length sequences.  Raw 3 ms-sampled
traces (~1700 points for 5 s) are average-pooled into a configurable
number of bins and normalised into [0, 1], with 1 meaning "victim
active" (frequency at the bottom of the range) so the sequence reads
like an activity waveform.
"""

from __future__ import annotations

import numpy as np

from .tracer import TraceRecord


def bin_trace(freqs_mhz: np.ndarray, num_bins: int) -> np.ndarray:
    """Average-pool a frequency trace into ``num_bins`` values."""
    freqs = np.asarray(freqs_mhz, dtype=np.float64)
    if freqs.size == 0:
        return np.zeros(num_bins)
    edges = np.linspace(0, freqs.size, num_bins + 1).astype(int)
    pooled = np.empty(num_bins)
    for i in range(num_bins):
        lo, hi = edges[i], max(edges[i + 1], edges[i] + 1)
        pooled[i] = freqs[lo:min(hi, freqs.size)].mean() if lo < (
            freqs.size
        ) else freqs[-1]
    return pooled


def to_activity(freqs_mhz: np.ndarray, *, low_mhz: float = 1400.0,
                high_mhz: float = 2400.0) -> np.ndarray:
    """Map frequency to an activity score in [0, 1] (1 = victim busy)."""
    span = high_mhz - low_mhz
    activity = (high_mhz - np.asarray(freqs_mhz, dtype=np.float64)) / span
    return np.clip(activity, 0.0, 1.0)


def trace_features(trace: TraceRecord, num_bins: int) -> np.ndarray:
    """Binned activity waveform of one trace."""
    return to_activity(bin_trace(trace.freqs_mhz, num_bins))


def normalize_traces(traces: list[TraceRecord],
                     num_bins: int) -> tuple[np.ndarray, np.ndarray]:
    """Stack traces into (features, labels) arrays for training."""
    features = np.stack([trace_features(t, num_bins) for t in traces])
    labels = np.array([t.label for t in traces], dtype=np.int64)
    return features, labels
