"""Website fingerprinting through UFS (Section 5, Figure 12).

Training phase: the attacker visits each site several times, collecting
a 3 ms-sampled uncore-frequency trace per visit, and trains an RNN
classifier (plus a kNN baseline).  Attack phase: fresh victim visits
are classified; the paper reports 82.18 % top-1 and 91.48 % top-5 over
100 websites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import top_k_accuracy
from ..core.context import ExperimentContext
from ..engine.parallel import Trial, resolve_workers, run_trials
from ..platform.system import System
from ..rng import derive_seed
from ..workloads.browser import BrowserVictim, WebsiteLibrary
from .features import normalize_traces
from .knn import KnnClassifier
from .methodology import UfsAttacker
from .rnn import RnnClassifier, RnnConfig
from .tracer import FrequencyTraceCollector, TraceRecord


@dataclass(frozen=True)
class FingerprintDataset:
    """Collected traces split into training and test sets."""

    train: tuple[TraceRecord, ...]
    test: tuple[TraceRecord, ...]
    num_sites: int
    trace_ms: float


@dataclass(frozen=True)
class FingerprintResult:
    """Classifier accuracies on the attack-phase traces."""

    top1: float
    top5: float
    knn_top1: float
    num_sites: int
    test_traces: int


def _collect_site_traces(
    *,
    site: int,
    num_sites: int,
    train_visits: int,
    test_visits: int,
    trace_ms: float,
    seed: int,
    victim_core: int,
    platform=None,
) -> tuple[list[TraceRecord], list[TraceRecord]]:
    """Collect all visits to one site in a dedicated seeded system.

    The shard's system seed is derived from ``(seed, site)`` only, so a
    shard's traces are a pure function of the experiment seed — not of
    how many workers collect them or in what order.  The victim RNG
    streams reuse the same ``visit-<site>-<visit>`` names the long-lived
    campaign uses, keyed off the shard seed.
    """
    system = System(platform, seed=derive_seed(seed, f"fp-site-{site}"))
    attacker = UfsAttacker(system)
    attacker.settle()
    collector = FrequencyTraceCollector(attacker)
    library = WebsiteLibrary(num_sites, seed=derive_seed(seed, "sites"),
                             trace_ms=trace_ms)
    signature = library.signature(site)
    train: list[TraceRecord] = []
    test: list[TraceRecord] = []
    for visit in range(train_visits + test_visits):
        victim = BrowserVictim(
            f"browse-{site}-{visit}",
            signature,
            system.namer.rng(f"visit-{site}-{visit}"),
        )
        system.launch(victim, 0, victim_core)
        trace = collector.collect(trace_ms, label=site)
        system.terminate(victim)
        system.run_ms(60.0)  # frequency recovers between visits
        (train if visit < train_visits else test).append(trace)
    attacker.shutdown()
    system.stop()
    return train, test


def collect_dataset(
    *,
    num_sites: int = 100,
    train_visits: int = 3,
    test_visits: int = 1,
    trace_ms: float = 5_000.0,
    seed: int = 0,
    victim_core: int = 5,
    platform=None,
    workers: int | None = 1,
    context: ExperimentContext | None = None,
    per_site_systems: bool | None = None,
) -> FingerprintDataset:
    """Run the attacker against victim visits to every site.

    By default one long-lived system hosts all visits: the attacker's
    helpers and probe stay resident (as they would in a real campaign)
    and victims come and go on their own core.  ``platform`` overrides
    the platform configuration — the Section 6.1 study passes a
    UFS-range-restricted one here.

    ``per_site_systems=True`` (implied by ``workers > 1``) switches to
    sharded collection: every site's visits run in their own system
    seeded from ``(seed, site)``, which makes the sites independent
    trials that :func:`~repro.engine.parallel.run_trials` can fan out
    across processes.  A sharded dataset is a pure function of the
    experiment seed — identical for every worker count — but it is a
    *different* (equally valid) dataset than the long-lived-campaign
    one, since the attacker state no longer carries across sites.
    """
    ctx = ExperimentContext.coalesce(
        context, platform=platform, seed=seed, workers=workers
    )
    platform, seed, workers = ctx.platform, ctx.seed, ctx.workers
    if per_site_systems is None:
        per_site_systems = resolve_workers(workers) > 1
    if per_site_systems:
        trials = [
            Trial(_collect_site_traces, dict(
                site=site,
                num_sites=num_sites,
                train_visits=train_visits,
                test_visits=test_visits,
                trace_ms=trace_ms,
                seed=seed,
                victim_core=victim_core,
                platform=platform,
            ))
            for site in range(num_sites)
        ]
        train: list[TraceRecord] = []
        test: list[TraceRecord] = []
        for site_train, site_test in run_trials(trials, workers=workers):
            train.extend(site_train)
            test.extend(site_test)
        return FingerprintDataset(
            train=tuple(train),
            test=tuple(test),
            num_sites=num_sites,
            trace_ms=trace_ms,
        )
    system = System(platform, seed=seed)
    attacker = UfsAttacker(system)
    attacker.settle()
    collector = FrequencyTraceCollector(attacker)
    library = WebsiteLibrary(num_sites, seed=derive_seed(seed, "sites"),
                             trace_ms=trace_ms)
    train = []
    test = []
    for site in range(num_sites):
        signature = library.signature(site)
        for visit in range(train_visits + test_visits):
            victim = BrowserVictim(
                f"browse-{site}-{visit}",
                signature,
                system.namer.rng(f"visit-{site}-{visit}"),
            )
            system.launch(victim, 0, victim_core)
            trace = collector.collect(trace_ms, label=site)
            system.terminate(victim)
            system.run_ms(60.0)  # frequency recovers between visits
            (train if visit < train_visits else test).append(trace)
    attacker.shutdown()
    system.stop()
    return FingerprintDataset(
        train=tuple(train),
        test=tuple(test),
        num_sites=num_sites,
        trace_ms=trace_ms,
    )


def run_fingerprinting_study(
    dataset: FingerprintDataset,
    *,
    num_bins: int = 96,
    rnn_config: RnnConfig | None = None,
    seed: int = 0,
) -> FingerprintResult:
    """Train the classifiers and score the attack phase."""
    train_x, train_y = normalize_traces(list(dataset.train), num_bins)
    test_x, test_y = normalize_traces(list(dataset.test), num_bins)
    config = rnn_config if rnn_config is not None else RnnConfig(
        num_classes=dataset.num_sites, seed=seed
    )
    rnn = RnnClassifier(config)
    rnn.fit(train_x, train_y)
    scores = rnn.predict_scores(test_x)
    knn = KnnClassifier(k=3, num_classes=dataset.num_sites)
    knn.fit(train_x, train_y)
    knn_scores = knn.predict_scores(test_x)
    top5_k = min(5, dataset.num_sites)
    return FingerprintResult(
        top1=top_k_accuracy(scores, test_y, 1),
        top5=top_k_accuracy(scores, test_y, top5_k),
        knn_top1=top_k_accuracy(knn_scores, test_y, 1),
        num_sites=dataset.num_sites,
        test_traces=len(dataset.test),
    )


def summarize(result: FingerprintResult) -> dict[str, float]:
    """Headline numbers in percent, as the paper reports them."""
    return {
        "top1_percent": 100.0 * result.top1,
        "top5_percent": 100.0 * result.top5,
        "knn_top1_percent": 100.0 * result.knn_top1,
    }


def activity_separability(dataset: FingerprintDataset,
                          num_bins: int = 96) -> float:
    """Mean inter-site L2 distance over mean intra-site distance.

    A quick diagnostic: values well above 1 mean the traces carry
    site-identifying signal before any classifier is involved.
    """
    features, labels = normalize_traces(
        list(dataset.train) + list(dataset.test), num_bins
    )
    intra: list[float] = []
    inter: list[float] = []
    for i in range(len(features)):
        for j in range(i + 1, len(features)):
            distance = float(np.linalg.norm(features[i] - features[j]))
            (intra if labels[i] == labels[j] else inter).append(distance)
    if not intra or not inter:
        return float("nan")
    return float(np.mean(inter) / np.mean(intra))
