"""Website fingerprinting through UFS (Section 5, Figure 12).

Training phase: the attacker visits each site several times, collecting
a 3 ms-sampled uncore-frequency trace per visit, and trains an RNN
classifier (plus a kNN baseline).  Attack phase: fresh victim visits
are classified; the paper reports 82.18 % top-1 and 91.48 % top-5 over
100 websites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import top_k_accuracy
from ..core.context import ExperimentContext
from ..engine.parallel import (
    Trial,
    TrialFailure,
    resolve_workers,
    run_trials,
)
from ..errors import ConfigError, ResilienceError
from ..platform.system import System
from ..rng import derive_seed
from ..workloads.browser import BrowserVictim, WebsiteLibrary
from .features import normalize_traces
from .knn import KnnClassifier
from .methodology import UfsAttacker
from .rnn import RnnClassifier, RnnConfig
from .tracer import FrequencyTraceCollector, TraceRecord


@dataclass(frozen=True)
class FingerprintDataset:
    """Collected traces split into training and test sets."""

    train: tuple[TraceRecord, ...]
    test: tuple[TraceRecord, ...]
    num_sites: int
    trace_ms: float


@dataclass(frozen=True)
class FingerprintResult:
    """Classifier accuracies on the attack-phase traces."""

    top1: float
    top5: float
    knn_top1: float
    num_sites: int
    test_traces: int


def fingerprint_cache_params(
    *,
    num_sites: int,
    train_visits: int,
    test_visits: int,
    trace_ms: float,
    victim_core: int,
    sharded: bool,
) -> dict:
    """The canonical cache-key params for a fingerprint dataset.

    Shared by the runner and the ``repro trace`` CLI.  ``sharded`` is
    part of the key because the sharded and long-lived-campaign
    collection modes are *different* (equally valid) datasets; worker
    count is not, because fan-out never changes a sharded dataset.
    """
    return {
        "num_sites": num_sites,
        "train_visits": train_visits,
        "test_visits": test_visits,
        "trace_ms": trace_ms,
        "victim_core": victim_core,
        "sharded": sharded,
    }


def _shard_store_key(store, *, site: int, seed: int, platform,
                     **params) -> str:
    """Cache key for one site shard's corpus."""
    from ..config import default_platform_config

    effective = (platform if platform is not None
                 else default_platform_config())
    return store.key(
        "fingerprint-shard",
        platform=effective,
        params={**fingerprint_cache_params(sharded=True, **params),
                "site": site},
        seed=seed,
    )


def _collect_site_traces(
    *,
    site: int,
    num_sites: int,
    train_visits: int,
    test_visits: int,
    trace_ms: float,
    seed: int,
    victim_core: int,
    platform=None,
    cache_dir=None,
) -> tuple[list[TraceRecord], list[TraceRecord]]:
    """Collect all visits to one site in a dedicated seeded system.

    The shard's system seed is derived from ``(seed, site)`` only, so a
    shard's traces are a pure function of the experiment seed — not of
    how many workers collect them or in what order.  The victim RNG
    streams reuse the same ``visit-<site>-<visit>`` names the long-lived
    campaign uses, keyed off the shard seed.

    With ``cache_dir`` set, each shard owns its own cache line: the
    worker process that runs the shard reads and writes the shard's
    corpus itself, so a parallel warm run touches the simulator for
    missing shards only, and concurrent writers never share a blob.
    """
    key = None
    store = None
    if cache_dir is not None:
        from ..trace.store import TraceStore

        store = TraceStore(cache_dir)
        key = _shard_store_key(
            store, site=site, seed=seed, platform=platform,
            num_sites=num_sites, train_visits=train_visits,
            test_visits=test_visits, trace_ms=trace_ms,
            victim_core=victim_core,
        )
        cached = store.fetch(key)
        if cached is not None:
            meta, records = cached
            split = int(meta["train_count"])
            return list(records[:split]), list(records[split:])
    system = System(platform, seed=derive_seed(seed, f"fp-site-{site}"))
    attacker = UfsAttacker(system)
    attacker.settle()
    collector = FrequencyTraceCollector(attacker)
    library = WebsiteLibrary(num_sites, seed=derive_seed(seed, "sites"),
                             trace_ms=trace_ms)
    signature = library.signature(site)
    train: list[TraceRecord] = []
    test: list[TraceRecord] = []
    for visit in range(train_visits + test_visits):
        victim = BrowserVictim(
            f"browse-{site}-{visit}",
            signature,
            system.namer.rng(f"visit-{site}-{visit}"),
        )
        system.launch(victim, 0, victim_core)
        trace = collector.collect(trace_ms, label=site)
        system.terminate(victim)
        system.run_ms(60.0)  # frequency recovers between visits
        (train if visit < train_visits else test).append(trace)
    attacker.shutdown()
    system.stop()
    if store is not None:
        store.put(key, train + test, experiment="fingerprint-shard",
                  meta={"train_count": len(train), "site": site})
    return train, test


def collect_dataset(
    *,
    num_sites: int = 100,
    train_visits: int = 3,
    test_visits: int = 1,
    trace_ms: float = 5_000.0,
    seed: int = 0,
    victim_core: int = 5,
    platform=None,
    workers: int | None = 1,
    context: ExperimentContext | None = None,
    per_site_systems: bool | None = None,
    cache_dir=None,
    checkpoint_dir=None,
    retry=None,
) -> FingerprintDataset:
    """Run the attacker against victim visits to every site.

    By default one long-lived system hosts all visits: the attacker's
    helpers and probe stay resident (as they would in a real campaign)
    and victims come and go on their own core.  ``platform`` overrides
    the platform configuration — the Section 6.1 study passes a
    UFS-range-restricted one here.

    ``per_site_systems=True`` (implied by ``workers > 1``) switches to
    sharded collection: every site's visits run in their own system
    seeded from ``(seed, site)``, which makes the sites independent
    trials that :func:`~repro.engine.parallel.run_trials` can fan out
    across processes.  A sharded dataset is a pure function of the
    experiment seed — identical for every worker count — but it is a
    *different* (equally valid) dataset than the long-lived-campaign
    one, since the attacker state no longer carries across sites.

    ``cache_dir`` names a :class:`~repro.trace.store.TraceStore` root
    and makes collection cache-aware: traces are a pure function of
    ``(platform, collection params, seed)``, so a key hit skips the
    simulation entirely and a miss stores the freshly simulated corpus
    on the way out — bit-identical datasets either way.  In long-lived
    mode the whole dataset is one cache line; in sharded mode every
    site shard is its own line, written by whichever worker process ran
    the shard (so ``workers > 1`` warms and reuses the same entries a
    serial run does).

    ``checkpoint_dir`` makes collection resumable (and implies sharded
    mode — only independent site shards can be skipped individually):
    every completed site's traces are recorded to an atomic checkpoint
    keyed by (platform, params, seed), so an interrupted campaign
    resumes where it stopped and yields a bit-identical dataset.
    ``retry`` re-runs transient per-site crashes; a site still failed
    after its attempts raises
    :class:`~repro.errors.ResilienceError`.
    """
    ctx = ExperimentContext.coalesce(
        context, platform=platform, seed=seed, workers=workers
    )
    platform, seed, workers = ctx.platform, ctx.seed, ctx.workers
    if per_site_systems is None:
        per_site_systems = (resolve_workers(workers) > 1
                            or checkpoint_dir is not None)
    if checkpoint_dir is not None and not per_site_systems:
        raise ConfigError(
            "checkpointed collection requires per_site_systems=True: "
            "only independent site shards can be resumed individually"
        )
    if per_site_systems:
        trials = [
            Trial(_collect_site_traces, dict(
                site=site,
                num_sites=num_sites,
                train_visits=train_visits,
                test_visits=test_visits,
                trace_ms=trace_ms,
                seed=seed,
                victim_core=victim_core,
                platform=platform,
                cache_dir=(None if cache_dir is None else str(cache_dir)),
            ), label=f"site-{site}")
            for site in range(num_sites)
        ]
        checkpoint = None
        if checkpoint_dir is not None:
            from ..config import default_platform_config
            from ..resilience.checkpoint import Checkpoint

            effective = (platform if platform is not None
                         else default_platform_config())
            checkpoint = Checkpoint.for_experiment(
                checkpoint_dir, "collect_dataset",
                platform=effective,
                params=fingerprint_cache_params(
                    num_sites=num_sites, train_visits=train_visits,
                    test_visits=test_visits, trace_ms=trace_ms,
                    victim_core=victim_core, sharded=True,
                ),
                seed=seed,
            )
        shards = run_trials(
            trials, workers=workers,
            on_error="retry" if retry is not None else "raise",
            retry=retry, checkpoint=checkpoint,
        )
        failed = [s for s in shards if isinstance(s, TrialFailure)]
        if failed:
            raise ResilienceError(
                f"collection lost {len(failed)} of {len(shards)} site "
                "shards after retries: "
                + ", ".join(f.label or str(f.index) for f in failed)
            )
        train: list[TraceRecord] = []
        test: list[TraceRecord] = []
        for site_train, site_test in shards:
            train.extend(site_train)
            test.extend(site_test)
        return FingerprintDataset(
            train=tuple(train),
            test=tuple(test),
            num_sites=num_sites,
            trace_ms=trace_ms,
        )

    store = None
    dataset_key = None
    if cache_dir is not None:
        from ..config import default_platform_config
        from ..trace.store import TraceStore

        store = TraceStore(cache_dir)
        effective = (platform if platform is not None
                     else default_platform_config())
        dataset_key = store.key(
            "fingerprint",
            platform=effective,
            params=fingerprint_cache_params(
                num_sites=num_sites, train_visits=train_visits,
                test_visits=test_visits, trace_ms=trace_ms,
                victim_core=victim_core, sharded=False,
            ),
            seed=seed,
        )
        cached = store.fetch(dataset_key)
        if cached is not None:
            meta, records = cached
            split = int(meta["train_count"])
            return FingerprintDataset(
                train=tuple(records[:split]),
                test=tuple(records[split:]),
                num_sites=num_sites,
                trace_ms=trace_ms,
            )
    system = System(platform, seed=seed)
    attacker = UfsAttacker(system)
    attacker.settle()
    collector = FrequencyTraceCollector(attacker)
    library = WebsiteLibrary(num_sites, seed=derive_seed(seed, "sites"),
                             trace_ms=trace_ms)
    train = []
    test = []
    for site in range(num_sites):
        signature = library.signature(site)
        for visit in range(train_visits + test_visits):
            victim = BrowserVictim(
                f"browse-{site}-{visit}",
                signature,
                system.namer.rng(f"visit-{site}-{visit}"),
            )
            system.launch(victim, 0, victim_core)
            trace = collector.collect(trace_ms, label=site)
            system.terminate(victim)
            system.run_ms(60.0)  # frequency recovers between visits
            (train if visit < train_visits else test).append(trace)
    attacker.shutdown()
    system.stop()
    if store is not None:
        store.put(
            dataset_key, train + test, experiment="fingerprint",
            meta={
                "train_count": len(train),
                **fingerprint_cache_params(
                    num_sites=num_sites, train_visits=train_visits,
                    test_visits=test_visits, trace_ms=trace_ms,
                    victim_core=victim_core, sharded=False,
                ),
            },
        )
    return FingerprintDataset(
        train=tuple(train),
        test=tuple(test),
        num_sites=num_sites,
        trace_ms=trace_ms,
    )


def run_fingerprinting_study(
    dataset: FingerprintDataset,
    *,
    num_bins: int = 96,
    rnn_config: RnnConfig | None = None,
    seed: int = 0,
) -> FingerprintResult:
    """Train the classifiers and score the attack phase."""
    train_x, train_y = normalize_traces(list(dataset.train), num_bins)
    test_x, test_y = normalize_traces(list(dataset.test), num_bins)
    config = rnn_config if rnn_config is not None else RnnConfig(
        num_classes=dataset.num_sites, seed=seed
    )
    rnn = RnnClassifier(config)
    rnn.fit(train_x, train_y)
    scores = rnn.predict_scores(test_x)
    knn = KnnClassifier(k=3, num_classes=dataset.num_sites)
    knn.fit(train_x, train_y)
    knn_scores = knn.predict_scores(test_x)
    top5_k = min(5, dataset.num_sites)
    return FingerprintResult(
        top1=top_k_accuracy(scores, test_y, 1),
        top5=top_k_accuracy(scores, test_y, top5_k),
        knn_top1=top_k_accuracy(knn_scores, test_y, 1),
        num_sites=dataset.num_sites,
        test_traces=len(dataset.test),
    )


def summarize(result: FingerprintResult) -> dict[str, float]:
    """Headline numbers in percent, as the paper reports them."""
    return {
        "top1_percent": 100.0 * result.top1,
        "top5_percent": 100.0 * result.top5,
        "knn_top1_percent": 100.0 * result.knn_top1,
    }


def activity_separability(dataset: FingerprintDataset,
                          num_bins: int = 96) -> float:
    """Mean inter-site L2 distance over mean intra-site distance.

    A quick diagnostic: values well above 1 mean the traces carry
    site-identifying signal before any classifier is involved.
    """
    features, labels = normalize_traces(
        list(dataset.train) + list(dataset.test), num_bins
    )
    intra: list[float] = []
    inter: list[float] = []
    for i in range(len(features)):
        for j in range(i + 1, len(features)):
            distance = float(np.linalg.norm(features[i] - features[j]))
            (intra if labels[i] == labels[j] else inter).append(distance)
    if not intra or not inter:
        return float("nan")
    return float(np.mean(inter) / np.mean(intra))
