"""The Section 5 attack methodology: helper threads + probe.

The attacker controls two cores:

* a **stalling helper** running the pointer-chasing loop — with no
  other active core, 1 of 2 active cores is stalled (> 1/3) and the
  uncore pins at the maximum frequency;
* a **non-stalling helper** running plain compute — it guarantees that
  when the victim wakes, the stalled fraction is 1 of 3+ (<= 1/3) and
  the frequency *falls*, making victim activity visible.

A third core hosts the unprivileged frequency probe (Section 4.2),
whose measurement bursts are sparse enough not to perturb the stall
arithmetic.
"""

from __future__ import annotations

from ..core.probe import UncoreFrequencyProbe
from ..platform.system import System
from ..workloads.loops import NopLoop, StallingLoop


class AttackHelpers:
    """The stalling + non-stalling helper pair."""

    def __init__(self, system: System, *, socket_id: int = 0,
                 stall_core: int = 0, nop_core: int = 1) -> None:
        self.stalling = StallingLoop("attacker-stall", hops=0)
        self.non_stalling = NopLoop("attacker-nop")
        system.launch(self.stalling, socket_id, stall_core)
        system.launch(self.non_stalling, socket_id, nop_core)
        self._system = system

    def shutdown(self) -> None:
        self._system.terminate(self.stalling)
        self._system.terminate(self.non_stalling)


class UfsAttacker:
    """Helpers plus an unprivileged frequency probe, ready to trace."""

    def __init__(self, system: System, *, socket_id: int = 0,
                 stall_core: int = 0, nop_core: int = 1,
                 probe_core: int = 2, probe_hops: int = 1) -> None:
        self.system = system
        self.helpers = AttackHelpers(
            system, socket_id=socket_id, stall_core=stall_core,
            nop_core=nop_core,
        )
        self.probe_actor = system.create_actor(
            "attacker-probe", socket_id, probe_core
        )
        self.probe = UncoreFrequencyProbe(self.probe_actor,
                                          hops=probe_hops)

    def settle(self, duration_ms: float = 120.0) -> None:
        """Let the uncore reach freq_max before tracing starts."""
        self.system.run_ms(duration_ms)

    def shutdown(self) -> None:
        self.helpers.shutdown()
        self.probe_actor.retire()
