"""Frequency trace collection for the side-channel attacks.

The attacker samples its latency-based frequency estimate every 3 ms
(the paper's cadence in both Section 5 attacks).  Traces are regular
arrays ready for feature extraction and classification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import ms
from .methodology import UfsAttacker


@dataclass(frozen=True)
class TraceRecord:
    """One collected frequency trace with its ground-truth label."""

    label: int
    times_ms: np.ndarray
    freqs_mhz: np.ndarray

    @property
    def duration_ms(self) -> float:
        """Span of the trace: last timestamp minus first.

        The subtraction matters for traces that do not start at zero
        (replayed slices, re-based recordings); for collector output,
        whose first sample is at 0.0, it is the last timestamp anyway.
        """
        if not len(self.times_ms):
            return 0.0
        return float(self.times_ms[-1] - self.times_ms[0])


class FrequencyTraceCollector:
    """Samples the attacker's probe at a fixed cadence.

    ``on_record`` is the capture hook: when set, every completed trace
    is passed to it before being returned.  The trace-store capture
    paths (``repro trace record``, the cache-aware studies) hang a
    corpus writer here; the hook is observational and must not mutate
    the record.
    """

    def __init__(self, attacker: UfsAttacker,
                 sample_period_ms: float = 3.0,
                 on_record=None) -> None:
        self.attacker = attacker
        self.sample_period_ns = ms(sample_period_ms)
        self.on_record = on_record

    def collect(self, duration_ms: float, label: int = -1) -> TraceRecord:
        """Record a trace of ``duration_ms`` starting now."""
        points = self.attacker.probe.trace(
            ms(duration_ms), self.sample_period_ns
        )
        start = points[0][0] if points else 0
        times = np.array([(t - start) / 1e6 for t, _ in points])
        freqs = np.array([f for _, f in points])
        record = TraceRecord(label=label, times_ms=times, freqs_mhz=freqs)
        if self.on_record is not None:
            self.on_record(record)
        return record


def active_duration_ms(trace: TraceRecord,
                       threshold_mhz: float = 2000.0) -> float:
    """Total time the trace spends *below* ``threshold_mhz``.

    Under the attack methodology the frequency sits at freq_max while
    the victim idles and falls toward freq_min while the victim runs,
    so time-below-threshold estimates the victim's busy time.
    """
    if len(trace.times_ms) < 2:
        return 0.0
    below = trace.freqs_mhz < threshold_mhz
    step = float(np.median(np.diff(trace.times_ms)))
    return float(below.sum()) * step


def excursion_duration_ms(trace: TraceRecord,
                          below_mhz: float = 2330.0) -> float:
    """Length of the trace's departure from ``freq_max``.

    From the first sample below ``below_mhz`` to the last: this spans
    the victim's busy period *plus* the UFS down- and up-ramps, whose
    total length is a platform constant the attacker subtracts (see
    :class:`~repro.sidechannel.filesize.FileSizeProfiler`).  Unlike
    time-below-a-low-threshold, it stays accurate for jobs too short
    for the frequency to reach the bottom of its range.
    """
    if len(trace.times_ms) < 2:
        return 0.0
    indices = np.flatnonzero(trace.freqs_mhz < below_mhz)
    if indices.size == 0:
        return 0.0
    return float(
        trace.times_ms[indices[-1]] - trace.times_ms[indices[0]]
    )
