"""Open-world website fingerprinting (an extension of Figure 12).

The paper's study is *closed-world*: every attack-phase trace belongs
to one of the 100 trained sites.  Deployed fingerprinting faces the
open world — the victim mostly visits pages the attacker never trained
on — so the classifier must also *reject*: answer "unmonitored" when
no trained site fits.

Standard approach (Wang et al.'s threshold rule): classify with the
closed-world model, but accept the top-1 label only when its softmax
confidence clears a threshold calibrated on held-out traces.  Metrics
follow the fingerprinting literature: true-positive rate on monitored
traces, false-positive rate on unmonitored ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..platform.system import System
from ..rng import derive_seed
from ..workloads.browser import BrowserVictim, WebsiteLibrary
from .features import normalize_traces
from .methodology import UfsAttacker
from .rnn import RnnClassifier, RnnConfig
from .tracer import FrequencyTraceCollector, TraceRecord

#: Label assigned to traces of sites outside the monitored set.
UNMONITORED = -1


@dataclass(frozen=True)
class OpenWorldResult:
    """Detection quality in the open-world setting."""

    true_positive_rate: float   # monitored trace -> correct site
    false_positive_rate: float  # unmonitored trace -> any site
    rejection_threshold: float
    monitored_traces: int
    unmonitored_traces: int


def collect_open_world(
    *,
    monitored_sites: int = 12,
    unmonitored_sites: int = 12,
    train_visits: int = 3,
    test_visits: int = 2,
    trace_ms: float = 4_000.0,
    seed: int = 0,
    victim_core: int = 5,
) -> tuple[list[TraceRecord], list[TraceRecord]]:
    """Training traces (monitored only) and mixed attack traces.

    The site library holds monitored + unmonitored signatures; the
    attacker trains only on the first ``monitored_sites`` of them.
    Attack-phase traces of unmonitored sites carry the
    :data:`UNMONITORED` label.
    """
    total = monitored_sites + unmonitored_sites
    system = System(seed=seed)
    attacker = UfsAttacker(system)
    attacker.settle()
    collector = FrequencyTraceCollector(attacker)
    library = WebsiteLibrary(total, seed=derive_seed(seed, "ow-sites"),
                             trace_ms=trace_ms)
    train: list[TraceRecord] = []
    test: list[TraceRecord] = []
    for site in range(total):
        monitored = site < monitored_sites
        signature = library.signature(site)
        visits = (train_visits + test_visits) if monitored else (
            test_visits
        )
        for visit in range(visits):
            victim = BrowserVictim(
                f"ow-{site}-{visit}",
                signature,
                system.namer.rng(f"ow-visit-{site}-{visit}"),
            )
            system.launch(victim, 0, victim_core)
            label = site if monitored else UNMONITORED
            trace = collector.collect(trace_ms, label=label)
            system.terminate(victim)
            system.run_ms(60.0)
            if monitored and visit < train_visits:
                train.append(trace)
            else:
                test.append(trace)
    attacker.shutdown()
    system.stop()
    return train, test


def evaluate_open_world(
    train: list[TraceRecord],
    test: list[TraceRecord],
    *,
    num_bins: int = 96,
    rnn_config: RnnConfig | None = None,
    threshold_quantile: float = 0.25,
    seed: int = 0,
) -> OpenWorldResult:
    """Train closed-world, reject by confidence threshold.

    The threshold is set so that ``threshold_quantile`` of the
    *training* traces' own top-1 confidences fall below it — i.e. the
    attacker tunes the rejection rule without unmonitored data.  The
    default trades some recall for rejection power (a lax threshold
    accepts nearly every unmonitored trace; see the extension bench).
    """
    monitored = sorted({t.label for t in train})
    index_of = {label: i for i, label in enumerate(monitored)}
    train_x, train_labels = normalize_traces(train, num_bins)
    train_y = np.array([index_of[l] for l in train_labels])
    config = rnn_config if rnn_config is not None else RnnConfig(
        num_classes=len(monitored), seed=seed
    )
    model = RnnClassifier(config)
    model.fit(train_x, train_y)

    train_scores = model.predict_scores(train_x)
    top1_confidence = train_scores.max(axis=1)
    threshold = float(np.quantile(top1_confidence,
                                  threshold_quantile))

    test_x, test_labels = normalize_traces(test, num_bins)
    scores = model.predict_scores(test_x)
    confidences = scores.max(axis=1)
    predictions = scores.argmax(axis=1)

    tp = fp = n_monitored = n_unmonitored = 0
    for truth, predicted, confidence in zip(test_labels, predictions,
                                            confidences):
        accepted = confidence >= threshold
        if truth == UNMONITORED:
            n_unmonitored += 1
            if accepted:
                fp += 1
        else:
            n_monitored += 1
            if accepted and monitored[predicted] == truth:
                tp += 1
    return OpenWorldResult(
        true_positive_rate=tp / n_monitored if n_monitored else 0.0,
        false_positive_rate=(
            fp / n_unmonitored if n_unmonitored else 0.0
        ),
        rejection_threshold=threshold,
        monitored_traces=n_monitored,
        unmonitored_traces=n_unmonitored,
    )
