"""An Elman RNN classifier in pure numpy (the paper's attack model).

The paper trains an RNN on uncore-frequency traces to fingerprint
websites, reusing the model of MeshUp [57].  PyTorch is unavailable
here, so this module implements the same family from scratch:

* Elman recurrence ``h_t = tanh(W_x x_t + W_h h_{t-1} + b)``;
* mean-pooled hidden states feeding a softmax classification head;
* full backpropagation through time with gradient clipping;
* Adam optimisation with minibatches.

Everything is vectorised over the batch, so training on a few hundred
traces of ~100 steps takes seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class RnnConfig:
    """Architecture and training hyperparameters."""

    input_dim: int = 1
    hidden_dim: int = 64
    num_classes: int = 100
    learning_rate: float = 1e-2
    epochs: int = 300
    batch_size: int = 64
    grad_clip: float = 5.0
    seed: int = 0

    def validate(self) -> None:
        if min(self.input_dim, self.hidden_dim, self.num_classes) <= 0:
            raise ValueError("model dimensions must be positive")
        if self.learning_rate <= 0 or self.epochs <= 0:
            raise ValueError("training hyperparameters must be positive")


@dataclass
class _Adam:
    """Adam state for one parameter tensor."""

    m: np.ndarray
    v: np.ndarray
    t: int = 0

    @classmethod
    def like(cls, param: np.ndarray) -> "_Adam":
        return cls(np.zeros_like(param), np.zeros_like(param))

    def step(self, param: np.ndarray, grad: np.ndarray,
             lr: float) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self.t += 1
        self.m = beta1 * self.m + (1 - beta1) * grad
        self.v = beta2 * self.v + (1 - beta2) * grad * grad
        m_hat = self.m / (1 - beta1**self.t)
        v_hat = self.v / (1 - beta2**self.t)
        param -= lr * m_hat / (np.sqrt(v_hat) + eps)


@dataclass
class _History:
    """Per-epoch training metrics."""

    loss: list[float] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)


class RnnClassifier:
    """Elman RNN + softmax head, trained with BPTT/Adam."""

    def __init__(self, config: RnnConfig) -> None:
        config.validate()
        self.config = config
        rng = np.random.default_rng(config.seed)
        h, d, c = config.hidden_dim, config.input_dim, config.num_classes
        scale_x = 1.0 / np.sqrt(d)
        scale_h = 1.0 / np.sqrt(h)
        self.w_x = rng.normal(0.0, scale_x, (d, h))
        self.w_h = rng.normal(0.0, scale_h, (h, h))
        self.b_h = np.zeros(h)
        self.w_o = rng.normal(0.0, scale_h, (h, c))
        self.b_o = np.zeros(c)
        self._opt = {
            name: _Adam.like(getattr(self, name))
            for name in ("w_x", "w_h", "b_h", "w_o", "b_o")
        }
        self.history = _History()

    # -- forward -----------------------------------------------------------

    def _forward(self, batch: np.ndarray):
        """Run the recurrence; returns (hiddens per step, mean hidden,
        logits).  ``batch`` is (n, steps, input_dim)."""
        n, steps, _ = batch.shape
        h = np.zeros((n, self.config.hidden_dim))
        hiddens = np.empty((steps, n, self.config.hidden_dim))
        for t in range(steps):
            h = np.tanh(batch[:, t, :] @ self.w_x + h @ self.w_h
                        + self.b_h)
            hiddens[t] = h
        pooled = hiddens.mean(axis=0)
        logits = pooled @ self.w_o + self.b_o
        return hiddens, pooled, logits

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Class scores for (n, steps) or (n, steps, input_dim) input."""
        batch = self._as_batch(features)
        _, _, logits = self._forward(batch)
        return self._softmax(logits)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard top-1 predictions."""
        return self.predict_scores(features).argmax(axis=1)

    def _as_batch(self, features: np.ndarray) -> np.ndarray:
        array = np.asarray(features, dtype=np.float64)
        if array.ndim == 2:
            array = array[:, :, None]
        if array.shape[-1] != self.config.input_dim:
            raise ValueError(
                f"expected input dim {self.config.input_dim}, got "
                f"{array.shape[-1]}"
            )
        return array

    # -- training ------------------------------------------------------------

    def _backward(self, batch, labels, hiddens, pooled, probs):
        """BPTT gradients for one minibatch."""
        n, steps, _ = batch.shape
        grad_logits = probs.copy()
        grad_logits[np.arange(n), labels] -= 1.0
        grad_logits /= n
        grads = {
            "w_o": pooled.T @ grad_logits,
            "b_o": grad_logits.sum(axis=0),
            "w_x": np.zeros_like(self.w_x),
            "w_h": np.zeros_like(self.w_h),
            "b_h": np.zeros_like(self.b_h),
        }
        # Mean pooling distributes the head gradient over every step.
        grad_pooled = grad_logits @ self.w_o.T / steps
        grad_h_next = np.zeros((n, self.config.hidden_dim))
        for t in range(steps - 1, -1, -1):
            grad_h = grad_pooled + grad_h_next
            pre = grad_h * (1.0 - hiddens[t] ** 2)
            grads["w_x"] += batch[:, t, :].T @ pre
            grads["b_h"] += pre.sum(axis=0)
            h_prev = hiddens[t - 1] if t > 0 else np.zeros_like(hiddens[0])
            grads["w_h"] += h_prev.T @ pre
            grad_h_next = pre @ self.w_h.T
        return grads

    def fit(self, features: np.ndarray, labels: np.ndarray) -> _History:
        """Train on (n, steps[, input_dim]) features and int labels."""
        batch_all = self._as_batch(features)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.min() < 0 or labels.max() >= self.config.num_classes:
            raise ValueError("labels outside the configured class range")
        rng = np.random.default_rng(self.config.seed + 1)
        n = batch_all.shape[0]
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, n, self.config.batch_size):
                index = order[start:start + self.config.batch_size]
                batch = batch_all[index]
                target = labels[index]
                hiddens, pooled, logits = self._forward(batch)
                probs = self._softmax(logits)
                eps = 1e-12
                epoch_loss += float(
                    -np.log(probs[np.arange(len(index)), target]
                            + eps).sum()
                )
                correct += int(
                    (logits.argmax(axis=1) == target).sum()
                )
                grads = self._backward(batch, target, hiddens, pooled,
                                       probs)
                for name, grad in grads.items():
                    norm = np.linalg.norm(grad)
                    if norm > self.config.grad_clip:
                        grad = grad * (self.config.grad_clip / norm)
                    self._opt[name].step(getattr(self, name), grad,
                                         self.config.learning_rate)
            self.history.loss.append(epoch_loss / n)
            self.history.accuracy.append(correct / n)
        return self.history
