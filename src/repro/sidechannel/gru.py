"""A GRU classifier in pure numpy — the RNN ablation partner.

MeshUp's classifier (which the paper reuses) is a gated recurrent
model; the plain Elman RNN in :mod:`repro.sidechannel.rnn` is the
simplest member of that family.  This module implements a single-layer
GRU with full backpropagation through time so the fingerprinting bench
can compare the two (gating helps on longer traces where the Elman
recurrence forgets the page-load's opening structure).

Update equations (reset gate r, update gate z, candidate h~)::

    r_t = sigmoid(x_t W_xr + h_{t-1} W_hr + b_r)
    z_t = sigmoid(x_t W_xz + h_{t-1} W_hz + b_z)
    c_t = tanh   (x_t W_xc + (r_t * h_{t-1}) W_hc + b_c)
    h_t = (1 - z_t) * h_{t-1} + z_t * c_t

Classification reads a softmax head off the mean-pooled hidden states,
matching the Elman model's head so the comparison isolates the
recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .rnn import RnnConfig, _Adam


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class _Gates:
    """Forward-pass activations cached for one step's backward pass."""

    r: np.ndarray
    z: np.ndarray
    c: np.ndarray
    h_prev: np.ndarray


class GruClassifier:
    """Single-layer GRU + softmax head, trained with BPTT/Adam."""

    _GATE_PARAMS = ("w_xr", "w_hr", "b_r", "w_xz", "w_hz", "b_z",
                    "w_xc", "w_hc", "b_c", "w_o", "b_o")

    def __init__(self, config: RnnConfig) -> None:
        config.validate()
        self.config = config
        rng = np.random.default_rng(config.seed)
        d, h, k = config.input_dim, config.hidden_dim, (
            config.num_classes
        )
        sx, sh = 1.0 / np.sqrt(d), 1.0 / np.sqrt(h)
        for gate in ("r", "z", "c"):
            setattr(self, f"w_x{gate}", rng.normal(0, sx, (d, h)))
            setattr(self, f"w_h{gate}", rng.normal(0, sh, (h, h)))
            setattr(self, f"b_{gate}", np.zeros(h))
        self.w_o = rng.normal(0, sh, (h, k))
        self.b_o = np.zeros(k)
        self._opt = {
            name: _Adam.like(getattr(self, name))
            for name in self._GATE_PARAMS
        }

    # -- forward --------------------------------------------------------------

    def _step(self, x, h_prev):
        r = _sigmoid(x @ self.w_xr + h_prev @ self.w_hr + self.b_r)
        z = _sigmoid(x @ self.w_xz + h_prev @ self.w_hz + self.b_z)
        c = np.tanh(
            x @ self.w_xc + (r * h_prev) @ self.w_hc + self.b_c
        )
        h = (1.0 - z) * h_prev + z * c
        return h, _Gates(r=r, z=z, c=c, h_prev=h_prev)

    def _forward(self, batch):
        n, steps, _ = batch.shape
        h = np.zeros((n, self.config.hidden_dim))
        hiddens = np.empty((steps, n, self.config.hidden_dim))
        gates: list[_Gates] = []
        for t in range(steps):
            h, cache = self._step(batch[:, t, :], h)
            hiddens[t] = h
            gates.append(cache)
        pooled = hiddens.mean(axis=0)
        logits = pooled @ self.w_o + self.b_o
        return hiddens, gates, pooled, logits

    @staticmethod
    def _softmax(logits):
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def _as_batch(self, features):
        array = np.asarray(features, dtype=np.float64)
        if array.ndim == 2:
            array = array[:, :, None]
        if array.shape[-1] != self.config.input_dim:
            raise ValueError(
                f"expected input dim {self.config.input_dim}, got "
                f"{array.shape[-1]}"
            )
        return array

    def predict_scores(self, features):
        """Class probabilities for (n, steps[, input_dim]) input."""
        _, _, _, logits = self._forward(self._as_batch(features))
        return self._softmax(logits)

    def predict(self, features):
        """Hard top-1 predictions."""
        return self.predict_scores(features).argmax(axis=1)

    # -- backward ---------------------------------------------------------------

    def _backward(self, batch, labels, hiddens, gates, pooled, probs):
        n, steps, _ = batch.shape
        grad_logits = probs.copy()
        grad_logits[np.arange(n), labels] -= 1.0
        grad_logits /= n
        grads = {name: np.zeros_like(getattr(self, name))
                 for name in self._GATE_PARAMS}
        grads["w_o"] = pooled.T @ grad_logits
        grads["b_o"] = grad_logits.sum(axis=0)
        grad_pooled = grad_logits @ self.w_o.T / steps
        grad_h = np.zeros((n, self.config.hidden_dim))
        for t in range(steps - 1, -1, -1):
            grad_h = grad_h + grad_pooled
            g = gates[t]
            x = batch[:, t, :]
            # h = (1 - z) h_prev + z c
            grad_z = grad_h * (g.c - g.h_prev)
            grad_c = grad_h * g.z
            grad_h_prev = grad_h * (1.0 - g.z)
            # candidate
            pre_c = grad_c * (1.0 - g.c**2)
            grads["w_xc"] += x.T @ pre_c
            grads["w_hc"] += (g.r * g.h_prev).T @ pre_c
            grads["b_c"] += pre_c.sum(axis=0)
            grad_rh = pre_c @ self.w_hc.T
            grad_r = grad_rh * g.h_prev
            grad_h_prev += grad_rh * g.r
            # gates
            pre_r = grad_r * g.r * (1.0 - g.r)
            grads["w_xr"] += x.T @ pre_r
            grads["w_hr"] += g.h_prev.T @ pre_r
            grads["b_r"] += pre_r.sum(axis=0)
            grad_h_prev += pre_r @ self.w_hr.T
            pre_z = grad_z * g.z * (1.0 - g.z)
            grads["w_xz"] += x.T @ pre_z
            grads["w_hz"] += g.h_prev.T @ pre_z
            grads["b_z"] += pre_z.sum(axis=0)
            grad_h_prev += pre_z @ self.w_hz.T
            grad_h = grad_h_prev
        return grads

    def fit(self, features, labels):
        """Train; returns per-epoch (loss, accuracy) lists."""
        batch_all = self._as_batch(features)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.min() < 0 or labels.max() >= self.config.num_classes:
            raise ValueError("labels outside the configured class range")
        rng = np.random.default_rng(self.config.seed + 1)
        n = batch_all.shape[0]
        losses: list[float] = []
        accuracies: list[float] = []
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            for start in range(0, n, self.config.batch_size):
                index = order[start:start + self.config.batch_size]
                batch = batch_all[index]
                target = labels[index]
                hiddens, gates, pooled, logits = self._forward(batch)
                probs = self._softmax(logits)
                epoch_loss += float(
                    -np.log(
                        probs[np.arange(len(index)), target] + 1e-12
                    ).sum()
                )
                correct += int((logits.argmax(axis=1) == target).sum())
                grads = self._backward(batch, target, hiddens, gates,
                                       pooled, probs)
                for name, grad in grads.items():
                    norm = np.linalg.norm(grad)
                    if norm > self.config.grad_clip:
                        grad = grad * (self.config.grad_clip / norm)
                    self._opt[name].step(getattr(self, name), grad,
                                         self.config.learning_rate)
            losses.append(epoch_loss / n)
            accuracies.append(correct / n)
        return losses, accuracies
