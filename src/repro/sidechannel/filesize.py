"""File-size profiling through UFS (Section 5, Figure 11).

The victim compresses a file; its execution time is proportional to the
file size.  The attacker watches the uncore frequency: it rests at
``freq_max`` while the victim idles (helper-thread methodology) and
falls while the victim computes, so the length of the low-frequency
excursion measures the job — and hence the file size.

The busy-time metric is *time below a near-maximum threshold*, counted
sample-wise (robust to isolated probe noise).  The metric is monotone
in the true busy time but nonlinear for jobs shorter than the full UFS
down-ramp, so the attacker first calibrates it against known sizes and
then classifies unknown runs to the nearest calibrated size — the
paper's "granularity of 300 KB with an accuracy of over 99 %".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PlatformConfig
from ..core.context import ExperimentContext
from ..platform.system import System
from ..workloads.compression import CompressionVictim
from .methodology import UfsAttacker
from .tracer import FrequencyTraceCollector, active_duration_ms

#: The attacker's near-maximum frequency threshold: any departure from
#: freq_max counts as victim activity.
BUSY_THRESHOLD_MHZ = 2330.0


@dataclass(frozen=True)
class ProfiledRun:
    """One victim run: ground truth, metric and classification."""

    true_size_kb: float
    busy_metric_ms: float
    predicted_size_kb: float

    @property
    def correct(self) -> bool:
        return self.predicted_size_kb == self.true_size_kb


@dataclass(frozen=True)
class FileSizeStudy:
    """Aggregate results of a profiling sweep."""

    runs: tuple[ProfiledRun, ...]
    granularity_kb: float
    calibration: tuple[tuple[float, float], ...]  # (size_kb, metric_ms)

    @property
    def accuracy(self) -> float:
        if not self.runs:
            return 0.0
        return sum(1 for r in self.runs if r.correct) / len(self.runs)


class FileSizeProfiler:
    """Collects the busy metric for one victim compression run.

    ``on_record`` is forwarded to the underlying
    :class:`FrequencyTraceCollector` capture hook, so every profiled
    run's raw trace can be persisted as it is collected.
    """

    def __init__(self, system: System, attacker: UfsAttacker, *,
                 victim_core: int = 5,
                 sample_period_ms: float = 3.0,
                 on_record=None) -> None:
        self.system = system
        self.attacker = attacker
        self.victim_core = victim_core
        self.collector = FrequencyTraceCollector(
            attacker, sample_period_ms=sample_period_ms,
            on_record=on_record,
        )

    def profile(self, file_size_kb: float, *, tag: str = "run"):
        """Run the victim once; return the attacker's raw trace."""
        from ..workloads.compression import MS_PER_MB

        victim = CompressionVictim(
            f"compress-{file_size_kb}-{tag}",
            file_size_kb,
            start_delay_ms=60.0,
            rng=self.system.namer.rng(f"compress-{file_size_kb}-{tag}"),
        )
        trace_ms = 280.0 + file_size_kb / 1024.0 * MS_PER_MB * 1.25
        self.system.launch(victim, 0, self.victim_core)
        trace = self.collector.collect(trace_ms)
        self.system.terminate(victim)
        # Let the frequency recover to freq_max between runs.
        self.system.run_ms(150.0)
        return trace

    def busy_metric_ms(self, file_size_kb: float, *,
                       tag: str = "run") -> float:
        """Run the victim once; return the attacker's busy metric."""
        return active_duration_ms(
            self.profile(file_size_kb, tag=tag), BUSY_THRESHOLD_MHZ
        )


def study_from_traces(
    traces,
    *,
    sizes_kb: tuple[float, ...],
    calibration_runs: int,
    trials: int,
    granularity_kb: float,
) -> FileSizeStudy:
    """Score a file-size study from its raw traces alone.

    The traces must be in collection order — every size's calibration
    runs, then every size's attack trials — which is exactly the order
    :func:`run_filesize_study` collects (and the trace store replays)
    them.  All arithmetic here is a pure function of the trace floats,
    so a replayed corpus reproduces the simulated study bit for bit.
    """
    from ..errors import ConfigError

    traces = list(traces)
    expected = len(sizes_kb) * (calibration_runs + trials)
    if len(traces) != expected:
        raise ConfigError(
            f"file-size corpus holds {len(traces)} traces but the "
            f"study shape needs {expected} "
            f"({len(sizes_kb)} sizes x ({calibration_runs} calibration "
            f"+ {trials} attack) runs)"
        )
    iterator = iter(traces)

    calibration: list[tuple[float, float]] = []
    for size in sizes_kb:
        metrics = [
            active_duration_ms(next(iterator), BUSY_THRESHOLD_MHZ)
            for _ in range(calibration_runs)
        ]
        calibration.append((size, float(np.mean(metrics))))

    runs: list[ProfiledRun] = []
    for size in sizes_kb:
        for _ in range(trials):
            metric = active_duration_ms(next(iterator),
                                        BUSY_THRESHOLD_MHZ)
            predicted = min(
                calibration, key=lambda entry: abs(entry[1] - metric)
            )[0]
            runs.append(
                ProfiledRun(
                    true_size_kb=size,
                    busy_metric_ms=metric,
                    predicted_size_kb=predicted,
                )
            )
    return FileSizeStudy(
        runs=tuple(runs),
        granularity_kb=granularity_kb,
        calibration=tuple(calibration),
    )


def filesize_cache_params(
    *,
    sizes_kb: tuple[float, ...],
    calibration_runs: int,
    trials: int,
    granularity_kb: float,
) -> dict:
    """The canonical cache-key params for a file-size study.

    Shared by the runner and the ``repro trace`` CLI so both compute
    the same :meth:`~repro.trace.store.TraceStore.key` for the same
    study shape.  Deliberately excludes ``workers`` — fan-out never
    changes results — and ``granularity_kb`` stays in because it is
    part of the study's identity even though it does not steer the
    simulation.
    """
    return {
        "sizes_kb": list(sizes_kb),
        "calibration_runs": calibration_runs,
        "trials": trials,
        "granularity_kb": granularity_kb,
    }


def _collect_study_traces(
    *,
    sizes_kb: tuple[float, ...],
    calibration_runs: int,
    trials: int,
    seed: int,
    platform: PlatformConfig | None,
    on_record=None,
) -> list:
    """Simulate the study's victim runs; return traces in study order."""
    system = System(platform, seed=seed)
    attacker = UfsAttacker(system)
    attacker.settle()
    profiler = FileSizeProfiler(system, attacker, on_record=on_record)
    traces = []
    for size in sizes_kb:
        for i in range(calibration_runs):
            traces.append(profiler.profile(size, tag=f"cal{i}"))
    for size in sizes_kb:
        for trial in range(trials):
            traces.append(profiler.profile(size, tag=f"try{trial}"))
    attacker.shutdown()
    system.stop()
    return traces


def run_filesize_study(
    *,
    sizes_kb: tuple[float, ...] = tuple(
        300.0 * step for step in range(1, 11)
    ),
    calibration_runs: int = 2,
    trials: int = 2,
    granularity_kb: float = 300.0,
    seed: int = 0,
    platform: PlatformConfig | None = None,
    workers: int | None = 1,
    context: ExperimentContext | None = None,
    cache_dir=None,
) -> FileSizeStudy:
    """The Figure 11 experiment.

    Phase 1 (calibration): run each known size a few times and record
    the mean busy metric.  Phase 2 (attack): profile fresh runs and
    classify each to the calibrated size with the nearest metric.

    The calibration baselines and the attack runs share one long-lived
    system (the attacker's helpers stay resident), so there is nothing
    to fan out: ``workers`` is accepted for signature uniformity but
    unused.

    ``cache_dir`` names a :class:`~repro.trace.store.TraceStore` root.
    The study's raw traces are a pure function of ``(platform, study
    shape, seed)``: on a key hit the simulation is skipped and the
    stored corpus is scored instead, on a miss the simulated traces are
    stored on the way out.  Either path feeds the identical floats to
    :func:`study_from_traces`, so results are bit-identical with the
    cache cold, warm or disabled.
    """
    ctx = ExperimentContext.coalesce(
        context, platform=platform, seed=seed, workers=workers
    )
    seed = ctx.seed
    shape = dict(sizes_kb=sizes_kb, calibration_runs=calibration_runs,
                 trials=trials, granularity_kb=granularity_kb)

    store = None
    key = None
    if cache_dir is not None:
        from ..config import default_platform_config
        from ..trace.store import TraceStore

        store = TraceStore(cache_dir)
        effective = (ctx.platform if ctx.platform is not None
                     else default_platform_config())
        key = store.key("filesize", platform=effective,
                        params=filesize_cache_params(**shape), seed=seed)
        cached = store.fetch(key)
        if cached is not None:
            _, records = cached
            return study_from_traces(records, **shape)

    traces = _collect_study_traces(
        sizes_kb=sizes_kb, calibration_runs=calibration_runs,
        trials=trials, seed=seed, platform=ctx.platform,
    )
    if store is not None:
        store.put(key, traces, experiment="filesize",
                  meta=filesize_cache_params(**shape))
    return study_from_traces(traces, **shape)
