"""File-size profiling through UFS (Section 5, Figure 11).

The victim compresses a file; its execution time is proportional to the
file size.  The attacker watches the uncore frequency: it rests at
``freq_max`` while the victim idles (helper-thread methodology) and
falls while the victim computes, so the length of the low-frequency
excursion measures the job — and hence the file size.

The busy-time metric is *time below a near-maximum threshold*, counted
sample-wise (robust to isolated probe noise).  The metric is monotone
in the true busy time but nonlinear for jobs shorter than the full UFS
down-ramp, so the attacker first calibrates it against known sizes and
then classifies unknown runs to the nearest calibrated size — the
paper's "granularity of 300 KB with an accuracy of over 99 %".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PlatformConfig
from ..core.context import ExperimentContext
from ..platform.system import System
from ..workloads.compression import CompressionVictim
from .methodology import UfsAttacker
from .tracer import FrequencyTraceCollector, active_duration_ms

#: The attacker's near-maximum frequency threshold: any departure from
#: freq_max counts as victim activity.
BUSY_THRESHOLD_MHZ = 2330.0


@dataclass(frozen=True)
class ProfiledRun:
    """One victim run: ground truth, metric and classification."""

    true_size_kb: float
    busy_metric_ms: float
    predicted_size_kb: float

    @property
    def correct(self) -> bool:
        return self.predicted_size_kb == self.true_size_kb


@dataclass(frozen=True)
class FileSizeStudy:
    """Aggregate results of a profiling sweep."""

    runs: tuple[ProfiledRun, ...]
    granularity_kb: float
    calibration: tuple[tuple[float, float], ...]  # (size_kb, metric_ms)

    @property
    def accuracy(self) -> float:
        if not self.runs:
            return 0.0
        return sum(1 for r in self.runs if r.correct) / len(self.runs)


class FileSizeProfiler:
    """Collects the busy metric for one victim compression run."""

    def __init__(self, system: System, attacker: UfsAttacker, *,
                 victim_core: int = 5,
                 sample_period_ms: float = 3.0) -> None:
        self.system = system
        self.attacker = attacker
        self.victim_core = victim_core
        self.collector = FrequencyTraceCollector(
            attacker, sample_period_ms=sample_period_ms
        )

    def busy_metric_ms(self, file_size_kb: float, *,
                       tag: str = "run") -> float:
        """Run the victim once; return the attacker's busy metric."""
        from ..workloads.compression import MS_PER_MB

        victim = CompressionVictim(
            f"compress-{file_size_kb}-{tag}",
            file_size_kb,
            start_delay_ms=60.0,
            rng=self.system.namer.rng(f"compress-{file_size_kb}-{tag}"),
        )
        trace_ms = 280.0 + file_size_kb / 1024.0 * MS_PER_MB * 1.25
        self.system.launch(victim, 0, self.victim_core)
        trace = self.collector.collect(trace_ms)
        self.system.terminate(victim)
        # Let the frequency recover to freq_max between runs.
        self.system.run_ms(150.0)
        return active_duration_ms(trace, BUSY_THRESHOLD_MHZ)


def run_filesize_study(
    *,
    sizes_kb: tuple[float, ...] = tuple(
        300.0 * step for step in range(1, 11)
    ),
    calibration_runs: int = 2,
    trials: int = 2,
    granularity_kb: float = 300.0,
    seed: int = 0,
    platform: PlatformConfig | None = None,
    workers: int | None = 1,
    context: ExperimentContext | None = None,
) -> FileSizeStudy:
    """The Figure 11 experiment.

    Phase 1 (calibration): run each known size a few times and record
    the mean busy metric.  Phase 2 (attack): profile fresh runs and
    classify each to the calibrated size with the nearest metric.

    The calibration baselines and the attack runs share one long-lived
    system (the attacker's helpers stay resident), so there is nothing
    to fan out: ``workers`` is accepted for signature uniformity but
    unused.
    """
    ctx = ExperimentContext.coalesce(
        context, platform=platform, seed=seed, workers=workers
    )
    seed = ctx.seed
    system = System(ctx.platform, seed=seed)
    attacker = UfsAttacker(system)
    attacker.settle()
    profiler = FileSizeProfiler(system, attacker)

    calibration: list[tuple[float, float]] = []
    for size in sizes_kb:
        metrics = [
            profiler.busy_metric_ms(size, tag=f"cal{i}")
            for i in range(calibration_runs)
        ]
        calibration.append((size, float(np.mean(metrics))))

    runs: list[ProfiledRun] = []
    for size in sizes_kb:
        for trial in range(trials):
            metric = profiler.busy_metric_ms(size, tag=f"try{trial}")
            predicted = min(
                calibration, key=lambda entry: abs(entry[1] - metric)
            )[0]
            runs.append(
                ProfiledRun(
                    true_size_kb=size,
                    busy_metric_ms=metric,
                    predicted_size_kb=predicted,
                )
            )
    attacker.shutdown()
    system.stop()
    return FileSizeStudy(
        runs=tuple(runs),
        granularity_kb=granularity_kb,
        calibration=tuple(calibration),
    )
