"""Command-line front end: run the paper's experiments from a shell.

::

    python -m repro transmit --message "UFS!" --interval-ms 28
    python -m repro characterize
    python -m repro capacity --cross-processor --bits 150
    python -m repro capacity --backend batch
    python -m repro stress --threads 4
    python -m repro defenses --backend auto
    python -m repro compare --bits 24
    python -m repro fingerprint --sites 16 --cache-dir traces/
    python -m repro filesize
    python -m repro trace record fingerprint --cache-dir traces/
    python -m repro trace replay fingerprint --cache-dir traces/
    python -m repro trace ls --cache-dir traces/
    python -m repro validate --scenarios 500 --seed 1
    python -m repro validate --differential
    python -m repro capacity --resume ckpt/ --retries 2
    python -m repro chaos --workers 2
    python -m repro serve --store cache/ --port 8631
    python -m repro serve --store cache/ --backend remote --replication 3
    python -m repro submit capacity_sweep --params '{"bits": 64}' --wait
    python -m repro status job-000001
    python -m repro result job-000001
    python -m repro shards status --store cache/
    python -m repro shards rebalance --store cache/ --to 12 --resume ckpt/
    python -m repro shards heal --store cache/

Every subcommand accepts ``--seed`` for reproducibility and prints the
same row format the benchmark harness uses.  ``--workers N`` (or
``REPRO_WORKERS``) fans independent trials out across processes where a
command supports it (``capacity``, ``stress``, ``defenses``,
``compare``, ``fingerprint``); worker count never changes the results,
only the wall time.

Backends: ``capacity``, ``defenses``, ``compare`` and ``validate`` take
``--backend {des,batch,analytical,auto}`` (default ``$REPRO_BACKEND``,
then ``des``) to pick the simulator — ``batch`` is the bit-identical
vectorized fast path, ``analytical`` the closed-form estimator.  The
resolved backend is recorded in the run manifest.

Trace caching: ``fingerprint`` and ``filesize`` accept ``--cache-dir``
(or ``$REPRO_TRACE_CACHE``) to reuse recorded trace corpora — a cache
hit skips the simulation entirely and produces bit-identical results;
``--no-cache`` forces a cold run.  The ``trace`` subcommand group
(``record``, ``replay``, ``ls``, ``gc``, ``verify``) manages the store
directly.

Observability: every subcommand takes ``--telemetry PATH``, appending
a run manifest —
config digest, seed, wall time, simulated time and the full metric
snapshot — as one JSON line to PATH.  The experiment commands also take
``--json``, replacing the human tables with the manifest (including the
results) on stdout.  Telemetry is strictly observational: results are
byte-identical with it on or off.

Resilience: the long-running commands (``capacity``, ``defenses``,
``fingerprint``, ``validate``) take ``--resume DIR`` — completed
trials are checkpointed there atomically, and re-running the same
command resumes past them with bit-identical results.  ``capacity``
and ``defenses`` also take ``--retries N`` to re-run transient worker
crashes in place.  ``repro chaos`` injects the whole fault matrix
(crashed trials, killed workers, interrupted sweeps, corrupt and torn
trace stores, stressed channels) and exits non-zero unless every fault
is contained.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .analysis import format_table


def _resolve_cache_dir(args: argparse.Namespace) -> str | None:
    """Effective trace-store root for a cache-aware command.

    ``--cache-dir`` beats the ``REPRO_TRACE_CACHE`` environment
    variable; ``--no-cache`` beats both (so CI can export a store root
    globally and still run individual commands cold).
    """
    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    if explicit:
        return explicit
    return os.environ.get("REPRO_TRACE_CACHE") or None


def _cmd_transmit(args: argparse.Namespace) -> dict:
    from .core import ChannelConfig, SenderMode, UFVariationChannel
    from .platform import System
    from .units import ms

    system = System(seed=args.seed)
    channel = UFVariationChannel(
        system,
        config=ChannelConfig(interval_ns=ms(args.interval_ms)),
        receiver_socket=1 if args.cross_processor else 0,
        sender_mode=(
            SenderMode.TRAFFIC if args.traffic else SenderMode.STALL
        ),
    )
    bits = [
        (byte >> shift) & 1
        for byte in args.message.encode()
        for shift in range(7, -1, -1)
    ]
    result = channel.transmit(bits)
    received = bytearray()
    for offset in range(0, len(result.received) - 7, 8):
        value = 0
        for bit in result.received[offset:offset + 8]:
            value = (value << 1) | bit
        received.append(value)
    print(f"sent:     {args.message!r} ({len(bits)} bits)")
    print(f"received: {received.decode(errors='replace')!r}")
    print(f"BER: {100 * result.error_rate:.1f} %   capacity: "
          f"{result.capacity_bps:.1f} bit/s")
    channel.shutdown()
    system.stop()
    return {
        "experiment": "transmit",
        "results": {
            "bits": len(bits),
            "error_rate": result.error_rate,
            "capacity_bps": result.capacity_bps,
        },
    }


def _cmd_characterize(args: argparse.Namespace) -> dict:
    import numpy as np

    from .platform import System
    from .platform.tracing import frequency_trace
    from .units import ms
    from .workloads import L2PointerChaseLoop, TrafficLoop

    counts = (1, 2, 3, 4, 8, 16)
    rows = []
    for kind in ("None", "0-hop", "1-hop", "2-hop", "3-hop"):
        row = [kind]
        for threads in counts:
            system = System(seed=args.seed)
            for index in range(threads):
                if kind == "None":
                    workload = L2PointerChaseLoop(f"l2-{index}")
                else:
                    workload = TrafficLoop(f"t-{index}",
                                           hops=int(kind[0]))
                system.launch(workload, 0, index)
            system.run_ms(900)
            _, freqs = frequency_trace(
                system.socket(0).pmu.timeline,
                system.now - ms(300), system.now, ms(1),
            )
            row.append(f"{float(np.median(freqs)) / 1000:.1f}")
            system.stop()
        rows.append(row)
    print(format_table(
        ["traffic"] + [str(c) for c in counts], rows,
        title="median uncore frequency (GHz) vs thread count "
              "(Figure 3 excerpt)",
    ))
    return {
        "experiment": "characterize",
        "results": {
            "thread_counts": list(counts),
            "median_ghz": {row[0]: row[1:] for row in rows},
        },
    }


def _resolve_retry(args: argparse.Namespace):
    """``--retries N`` → a RetryPolicy allowing N re-runs (N+1 attempts)."""
    retries = getattr(args, "retries", 0)
    if not retries:
        return None
    from .resilience import RetryPolicy

    return RetryPolicy(max_attempts=retries + 1)


def _cmd_capacity(args: argparse.Namespace) -> dict:
    from .core.evaluation import DEFAULT_INTERVALS_MS, capacity_sweep
    from .fastpath.backend import resolve_backend

    backend = resolve_backend(args.backend, experiment="capacity_sweep")
    intervals = (
        tuple(args.intervals) if args.intervals else DEFAULT_INTERVALS_MS
    )
    sweep = capacity_sweep(
        intervals_ms=intervals,
        bits=args.bits,
        cross_processor=args.cross_processor,
        seed=args.seed,
        workers=args.workers,
        checkpoint_dir=args.resume,
        retry=_resolve_retry(args),
        backend=backend,
    )
    if not args.json:
        rows = [
            [f"{p.interval_ms:.0f}", f"{p.raw_rate_bps:.1f}",
             f"{100 * p.error_rate:.1f}", f"{p.capacity_bps:.1f}"]
            for p in sweep
        ]
        label = ("cross-processor" if args.cross_processor
                 else "cross-core")
        best = sweep.peak()
        print(format_table(
            ["interval (ms)", "raw (bps)", "BER (%)",
             "capacity (bit/s)"],
            rows,
            title=f"{label} capacity sweep; peak "
                  f"{best.capacity_bps:.1f} bit/s",
        ))
    return {
        "experiment": "capacity",
        "backend": backend,
        "results": {
            "points": sweep.points,
            "summary": sweep.summarize(),
        },
    }


def _cmd_stress(args: argparse.Namespace) -> dict:
    from .core.reliability import stress_table

    cells = stress_table(
        args.threads, bits=args.bits, seed=args.seed,
        workers=args.workers,
    )
    if not args.json:
        rows = [
            [
                cell.stress_threads,
                f"{cell.capacity_bps:.1f}",
                f"{100 * cell.error_rate:.0f}",
            ]
            for cell in cells
        ]
        print(format_table(
            ["N", "capacity (bit/s)", "BER (%)"], rows,
            title="UF-variation under stress-ng --cache N (Table 2)",
        ))
    return {"experiment": "stress", "results": {"cells": cells}}


def _cmd_defenses(args: argparse.Namespace) -> dict:
    from .defenses import analytics_energy_overhead, evaluate_defenses
    from .fastpath.backend import resolve_backend

    backend = resolve_backend(args.backend, experiment="evaluate_defenses")
    reports = evaluate_defenses(
        bits=args.bits, seed=args.seed, workers=args.workers,
        checkpoint_dir=args.resume, retry=_resolve_retry(args),
        backend=backend,
    )
    if not args.json:
        rows = [
            [
                r.defense,
                f"{100 * r.error_rate:.1f}",
                f"{r.capacity_bps:.1f}",
                "stopped" if r.channel_stopped else "functional",
            ]
            for r in reports
        ]
        print(format_table(
            ["defense", "BER (%)", "capacity", "verdict"], rows,
            title="UF-variation vs countermeasures (Section 6.1)",
        ))
    results: dict = {"reports": reports}
    if args.energy:
        energy = analytics_energy_overhead(seed=args.seed)
        results["energy"] = energy
        if not args.json:
            print(f"\nfixed-at-max energy overhead on analytics: "
                  f"{energy.overhead_percent:.1f} % (paper: ~7 %)")
    return {"experiment": "defenses", "backend": backend,
            "results": results}


def _cmd_compare(args: argparse.Namespace) -> dict:
    from .channels.comparison import (
        EXTENDED_TABLE3,
        PAPER_TABLE3,
        comparison_matrix,
    )
    from .channels.scenarios import SCENARIOS
    from .fastpath.backend import resolve_backend

    backend = resolve_backend(args.backend,
                              experiment="comparison_matrix")
    cells = comparison_matrix(
        bits=args.bits, seed=args.seed, workers=args.workers,
        backend=backend,
    )
    scenario_keys = [scenario.key for scenario in SCENARIOS]
    by_channel: dict[str, dict[str, object]] = {}
    for cell in cells:
        by_channel.setdefault(cell.channel, {})[cell.scenario] = cell
    agree = total = 0
    rows = []
    for channel, row_cells in by_channel.items():
        row = [channel]
        for key in scenario_keys:
            cell = row_cells.get(key)
            if cell is None:
                row.append("-")
                continue
            row.append(cell.mark)
            expected = {**PAPER_TABLE3, **EXTENDED_TABLE3}.get(
                channel, {}
            ).get(key)
            if expected is not None:
                total += 1
                agree += int(cell.functional is expected)
        rows.append(row)
    if not args.json:
        print(format_table(
            ["channel"] + scenario_keys, rows,
            title=f"channel x scenario functionality (Table 3); "
                  f"{agree}/{total} cells match the paper",
        ))
    return {
        "experiment": "compare",
        "backend": backend,
        "results": {
            "cells": cells,
            "paper_agreement": {"matched": agree, "graded": total},
        },
    }


def _cmd_fingerprint(args: argparse.Namespace) -> dict:
    from .sidechannel import collect_dataset, run_fingerprinting_study
    from .sidechannel.rnn import RnnConfig

    dataset = collect_dataset(
        num_sites=args.sites, train_visits=3, test_visits=2,
        trace_ms=args.trace_ms, seed=args.seed, workers=args.workers,
        cache_dir=_resolve_cache_dir(args),
        checkpoint_dir=args.resume,
    )
    result = run_fingerprinting_study(
        dataset,
        rnn_config=RnnConfig(num_classes=args.sites, epochs=400,
                             seed=args.seed),
    )
    if not args.json:
        print(f"sites: {args.sites}  attack traces: "
              f"{result.test_traces}")
        print(f"RNN top-1: {100 * result.top1:.1f} %  "
              f"top-5: {100 * result.top5:.1f} %  "
              f"(paper, 100 sites: 82.18 / 91.48)")
    return {"experiment": "fingerprint", "results": result}


def _cmd_filesize(args: argparse.Namespace) -> dict:
    from .sidechannel import run_filesize_study

    study = run_filesize_study(
        sizes_kb=tuple(300.0 * s for s in range(1, args.steps + 1)),
        trials=args.trials,
        seed=args.seed,
        cache_dir=_resolve_cache_dir(args),
    )
    if not args.json:
        print(f"file-size profiling at 300 KB granularity over "
              f"{len(study.runs)} runs: {100 * study.accuracy:.1f} % "
              "(paper: > 99 %)")
    return {
        "experiment": "filesize",
        "results": {"accuracy": study.accuracy, "study": study},
    }


def _fingerprint_shape(args: argparse.Namespace) -> dict:
    """The CLI fingerprint study shape (``repro fingerprint`` uses
    3 training and 2 attack visits per site)."""
    return dict(
        num_sites=args.sites,
        train_visits=3,
        test_visits=2,
        trace_ms=args.trace_ms,
    )


def _filesize_shape(args: argparse.Namespace) -> dict:
    """The CLI file-size study shape (300 KB steps, like the paper)."""
    return dict(
        sizes_kb=tuple(300.0 * s for s in range(1, args.steps + 1)),
        calibration_runs=2,
        trials=args.trials,
        granularity_kb=300.0,
    )


def _cmd_trace_record(args: argparse.Namespace) -> dict:
    from .sidechannel import collect_dataset, run_filesize_study
    from .trace import TraceStore

    store = TraceStore(args.cache_dir)
    before = {entry.key for entry in store.entries()}
    if args.experiment == "fingerprint":
        dataset = collect_dataset(
            **_fingerprint_shape(args),
            seed=args.seed, workers=args.workers,
            cache_dir=args.cache_dir,
        )
        traces = len(dataset.train) + len(dataset.test)
    else:
        study = run_filesize_study(
            **_filesize_shape(args),
            seed=args.seed,
            cache_dir=args.cache_dir,
        )
        traces = len(study.runs) + len(study.calibration) * 2
    new_keys = sorted(
        entry.key for entry in store.entries()
        if entry.key not in before
    )
    verb = "recorded" if new_keys else "already cached"
    print(f"{verb}: {args.experiment} ({traces} traces) in "
          f"{args.cache_dir}")
    for key in new_keys:
        print(f"  + {key}")
    return {
        "experiment": "trace-record",
        "results": {
            "recorded": args.experiment,
            "traces": traces,
            "new_keys": new_keys,
        },
    }


def _cmd_trace_replay(args: argparse.Namespace) -> dict:
    from .trace import TraceStore, replay_filesize, replay_fingerprint

    store = TraceStore(args.cache_dir)
    if args.experiment == "fingerprint":
        result = replay_fingerprint(
            store,
            **_fingerprint_shape(args),
            seed=args.seed,
            sharded=args.sharded,
            classifier=args.classifier,
        )
        if not args.json:
            print(f"replayed {result.test_traces} attack traces from "
                  f"{args.cache_dir} (no simulation)")
            print(f"{args.classifier} top-1: {100 * result.top1:.1f} %  "
                  f"top-5: {100 * result.top5:.1f} %")
        return {"experiment": "trace-replay", "results": result}
    study = replay_filesize(store, **_filesize_shape(args),
                            seed=args.seed)
    if not args.json:
        print(f"replayed {len(study.runs)} profiled runs from "
              f"{args.cache_dir} (no simulation)")
        print(f"file-size accuracy: {100 * study.accuracy:.1f} %")
    return {
        "experiment": "trace-replay",
        "results": {"accuracy": study.accuracy, "study": study},
    }


def _cmd_trace_ls(args: argparse.Namespace) -> dict:
    from .trace import TraceStore

    store = TraceStore(args.cache_dir)
    entries = store.entries()
    if not args.json:
        rows = [
            [
                entry.key,
                entry.experiment or "-",
                str(entry.records),
                f"{entry.size_bytes / 1024:.1f}",
                str(entry.tick),
            ]
            for entry in sorted(entries, key=lambda e: e.tick)
        ]
        print(format_table(
            ["key", "experiment", "records", "KiB", "tick"], rows,
            title=f"{len(entries)} corpora, "
                  f"{store.total_bytes() / 1024:.1f} KiB total "
                  f"in {args.cache_dir}",
        ))
    return {
        "experiment": "trace-ls",
        "results": {
            "entries": entries,
            "total_bytes": store.total_bytes(),
        },
    }


def _cmd_trace_gc(args: argparse.Namespace) -> dict:
    from .trace import TraceStore

    store = TraceStore(args.cache_dir)
    evicted = store.gc(args.max_bytes)
    if not args.json:
        for key in evicted:
            print(f"evicted {key}")
        print(f"{len(evicted)} corpora evicted; "
              f"{store.total_bytes() / 1024:.1f} KiB retained "
              f"(cap {args.max_bytes / 1024:.1f} KiB)")
    return {
        "experiment": "trace-gc",
        "results": {
            "evicted": evicted,
            "total_bytes": store.total_bytes(),
        },
    }


def _cmd_trace_verify(args: argparse.Namespace) -> dict:
    from .errors import TraceStoreError
    from .trace import TraceStore

    store = TraceStore(args.cache_dir)
    report = store.verify()
    if not args.json:
        print(f"{len(report.ok)} ok, {len(report.missing)} missing, "
              f"{len(report.corrupt)} corrupt, "
              f"{len(report.bad_entries)} bad index entries "
              f"in {args.cache_dir}")
    if not report.clean:
        for key in report.missing:
            print(f"  missing blob: {key}", file=sys.stderr)
        for key in report.corrupt:
            print(f"  corrupt blob: {key}", file=sys.stderr)
        for key in report.bad_entries:
            print(f"  unreadable index entry: {key}", file=sys.stderr)
        if args.quarantine:
            # Corrupt blobs and unreadable entries move aside; entries
            # whose blob vanished are dropped too, so the next record
            # re-warms everything.
            for key in (*report.corrupt, *report.missing,
                        *report.bad_entries):
                store.quarantine(key)
            print(f"  quarantined {len(report.corrupt)} corpora, "
                  f"{len(report.bad_entries)} damaged entries; "
                  f"dropped {len(report.missing)} stale entries",
                  file=sys.stderr)
        raise TraceStoreError(
            f"trace store {args.cache_dir} failed verification "
            f"({len(report.missing)} missing, "
            f"{len(report.corrupt)} corrupt, "
            f"{len(report.bad_entries)} bad index entries)"
        )
    return {"experiment": "trace-verify", "results": report}


def _cmd_validate(args: argparse.Namespace) -> dict:
    from .errors import ValidationError
    from .validate import (
        FAULTS,
        non_default_params,
        replay_repro,
        run_differential_suite,
        run_validation,
    )

    if args.backend is not None and not args.differential:
        raise ValidationError(
            "--backend narrows the backend-equivalence checks and "
            "only applies with --differential"
        )

    if args.replay:
        outcome = replay_repro(args.replay)
        if not args.json:
            for violation in outcome.violations:
                print(f"  [{violation.oracle}] {violation.message}")
        if outcome.ok:
            raise ValidationError(
                f"repro file {args.replay} no longer reproduces: the "
                f"recorded failure is gone (fixed, or the repro is "
                f"stale)"
            )
        if not args.json:
            print(f"reproduced: scenario {outcome.scenario.index} "
                  f"(seed {outcome.scenario.seed}) still fails with "
                  f"{len(outcome.violations)} violations")
        return {
            "experiment": "validate-replay",
            "results": {
                "reproduced": True,
                "violations": len(outcome.violations),
                "non_default_params": sorted(
                    non_default_params(outcome.scenario)
                ),
            },
        }

    if args.differential:
        import tempfile

        with tempfile.TemporaryDirectory() as workdir:
            reports = run_differential_suite(
                workdir, seed=args.seed, backend=args.backend
            )
        if not args.json:
            rows = [
                [r.name, "ok" if r.matched else "MISMATCH", r.detail]
                for r in reports
            ]
            print(format_table(["check", "result", "detail"], rows))
        mismatched = [r for r in reports if not r.matched]
        if mismatched:
            raise ValidationError(
                f"{len(mismatched)} differential checks diverged: "
                + ", ".join(r.name for r in mismatched)
            )
        return {
            "experiment": "validate-differential",
            "backend": args.backend,
            "results": {"checks": len(reports), "mismatches": 0},
        }

    if args.plant_fault is not None and args.plant_fault not in FAULTS:
        raise ValidationError(
            f"unknown fault {args.plant_fault!r}; "
            f"known: {sorted(FAULTS)}"
        )
    report = run_validation(
        seed=args.seed,
        count=args.scenarios,
        workers=args.workers,
        fault=args.plant_fault,
        repro_dir=args.repro_dir,
        checkpoint_dir=args.resume,
    )
    kinds = report.scenario_kinds
    if not args.json:
        print(f"{report.count - len(report.failures)}/{report.count} "
              f"scenarios clean (seed {report.seed}, "
              f"{len(report.violations)} violations)")
        print("modulation regimes: " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(kinds.items())
        ))
        if report.repro_path:
            print(f"repro file: {report.repro_path}")
    report.raise_on_failure()
    return {
        "experiment": "validate",
        "results": {
            "scenarios": report.count,
            "violations": 0,
            "fault": report.fault,
            "scenario_kinds": kinds,
        },
    }


def _cmd_chaos(args: argparse.Namespace) -> dict:
    import tempfile

    from .errors import ResilienceError
    from .resilience.chaos import CHAOS_FAULTS, run_chaos

    faults = tuple(args.faults) if args.faults else None
    if faults:
        unknown = sorted(set(faults) - set(CHAOS_FAULTS))
        if unknown:
            raise ResilienceError(
                f"unknown faults {unknown}; known: {list(CHAOS_FAULTS)}"
            )
    if args.workdir:
        outcomes = run_chaos(
            args.workdir, seed=args.seed, workers=args.workers,
            faults=faults,
        )
    else:
        with tempfile.TemporaryDirectory() as workdir:
            outcomes = run_chaos(
                workdir, seed=args.seed, workers=args.workers,
                faults=faults,
            )
    contained = sum(1 for o in outcomes if o.contained)
    if not args.json:
        rows = [
            [
                o.fault,
                o.mechanism,
                "contained" if o.contained else "ESCAPED",
                o.detail,
            ]
            for o in outcomes
        ]
        print(format_table(
            ["fault", "mechanism", "verdict", "detail"], rows,
            title=f"chaos matrix: {contained}/{len(outcomes)} faults "
                  "contained",
        ))
    escaped = [o for o in outcomes if not o.contained]
    if escaped:
        raise ResilienceError(
            f"{len(escaped)} of {len(outcomes)} injected faults "
            "escaped containment: "
            + ", ".join(o.fault for o in escaped)
        )
    return {
        "experiment": "chaos",
        "results": {
            "outcomes": outcomes,
            "contained": contained,
            "total": len(outcomes),
        },
    }


def _cmd_serve(args: argparse.Namespace) -> dict:
    import asyncio

    from .service.daemon import ExperimentService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store_root=args.store,
        shards=args.shards,
        pools=args.pools,
        workers_per_pool=args.pool_workers,
        queue_depth=args.queue_depth,
        max_per_tenant=args.max_per_tenant,
        checkpoint_root=args.resume,
        backend=args.store_backend,
        replication=args.replication,
        read_quorum=args.read_quorum,
        drain_timeout_s=args.drain_timeout,
    )

    async def _serve() -> None:
        service = ExperimentService(config)
        await service.start()
        print(f"repro service listening on "
              f"http://{config.host}:{service.port}  "
              f"(store={args.store or 'off'}, "
              f"backend={config.backend}, pools={config.pools}x"
              f"{config.workers_per_pool})", flush=True)
        await service.serve_until_shutdown()

    asyncio.run(_serve())
    return {"experiment": "serve", "results": None}


def _service_client(args: argparse.Namespace):
    from .service.client import ServiceClient

    return ServiceClient(args.port, host=args.host)


def _print_record(record: dict) -> None:
    import json

    print(json.dumps(record, indent=2, sort_keys=True))


def _cmd_submit(args: argparse.Namespace) -> dict:
    import json

    from .errors import ServiceError
    from .service.protocol import JobSpec

    try:
        params = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as exc:
        raise ServiceError(f"--params is not valid JSON: {exc}") from exc
    spec = JobSpec(
        experiment=args.experiment,
        params=params,
        seed=args.seed,
        backend=args.backend,
        tenant=args.tenant,
        priority=args.priority,
    )
    client = _service_client(args)
    record = client.submit(spec)
    # A cache hit comes back already-done but the submit response never
    # carries the payload; when waiting, always fetch through /result so
    # cold and warm runs print the same record shape.
    if args.wait and record.get("state") not in ("failed", "cancelled",
                                                 "expired"):
        record = client.result(record["job_id"], timeout=args.timeout)
    _print_record(record)
    return {"experiment": "submit", "results": record}


def _cmd_status(args: argparse.Namespace) -> dict:
    record = _service_client(args).status(args.job_id)
    _print_record(record)
    return {"experiment": "status", "results": record}


def _cmd_result(args: argparse.Namespace) -> dict:
    record = _service_client(args).result(
        args.job_id, wait=args.wait, timeout=args.timeout
    )
    _print_record(record)
    return {"experiment": "result", "results": record}


def _open_shard_backend(args: argparse.Namespace, *,
                        shards: int | None = None):
    """The backend a ``repro shards`` subcommand operates on.

    ``--backend auto`` (the default) trusts :func:`discover_layout`;
    explicit ``--shards`` / ``--replication`` override discovery,
    which matters on remote roots whose top shards are still empty
    (shards materialise lazily, so discovery can undershoot).
    """
    from .service.remote import open_backend

    return open_backend(
        args.store,
        backend=args.store_backend,
        shards=shards if shards is not None else args.shards,
        replication=args.replication,
        seed=args.seed,
    )


def _cmd_shards_status(args: argparse.Namespace) -> dict:
    from .service.remote import RemoteBlobBackend, discover_layout

    layout = discover_layout(args.store)
    backend = _open_shard_backend(args)
    remote = isinstance(backend, RemoteBlobBackend)
    shards = []
    if remote:
        headers = ["shard", "breaker", "objects", "replicas", "behind"]
        for index in range(backend.shard_count):
            health = backend.open_shard(index).status()
            reachable = sum(
                1 for r in health["replicas"] if r["reachable"]
            )
            shards.append({
                "shard": index,
                "breaker": health["breaker"],
                "objects": health["objects"],
                "replicas": f"{reachable}/{len(health['replicas'])}",
                "behind": sum(r["missing"]
                              for r in health["replicas"]),
            })
    else:
        headers = ["shard", "entries", "bytes"]
        for index in range(backend.shard_count):
            store = backend.open_shard(index)
            shards.append({
                "shard": index,
                "entries": len(store.entries()),
                "bytes": store.total_bytes(),
            })
    if not args.json:
        rows = [[row[h] for h in headers] for row in shards]
        kind = "remote" if remote else "local"
        print(format_table(
            headers, rows,
            title=f"{kind} store at {args.store}: "
                  f"{backend.shard_count} shards"
                  + (f", replication {backend.replication}"
                     if remote else ""),
        ))
    return {
        "experiment": "shards-status",
        "results": {"layout": layout, "shards": shards},
    }


def _cmd_shards_rebalance(args: argparse.Namespace) -> dict:
    import shutil

    from .errors import ServiceError
    from .service.remote import (
        RemoteBlobBackend,
        discover_layout,
        execute_rebalance,
        plan_rebalance,
        shard_io_for,
        verify_rebalance,
    )

    layout = discover_layout(args.store)
    old = args.shards if args.shards is not None \
        else layout["shard_count"]
    backend = _open_shard_backend(args, shards=old)
    remote = isinstance(backend, RemoteBlobBackend)
    healed = 0
    if remote:
        # Push any degraded-mode backlog up before planning: the plan
        # only sees what the replicas hold, so a cache-only write
        # would be stranded under the old routing.
        for index in range(backend.shard_count):
            healed += backend.open_shard(index).heal()["pushed"]
    io = shard_io_for(backend)
    plan = plan_rebalance(io, old, args.to)
    report = execute_rebalance(io, plan, checkpoint_dir=args.resume)
    check = verify_rebalance(io, plan)
    if remote and check["clean"]:
        # The write-through cache is derived data keyed by the old
        # shard routing; drop it so nothing stale shadows the moved
        # objects.  Cold reads repopulate it from the replicas.
        shutil.rmtree(backend.cache_root, ignore_errors=True)
    results = {
        "old_shards": old,
        "new_shards": args.to,
        "plan_key": plan.plan_key,
        "healed": healed,
        **report,
        "verified": check["ok"],
        "clean": check["clean"],
    }
    if not args.json:
        print(f"rebalance {old} -> {args.to} shards: "
              f"{report['moved']} moved, {report['skipped']} resumed "
              f"from checkpoint, {check['ok']}/{check['objects']} "
              f"objects verified bit-identical")
    if not check["clean"]:
        damaged = check["missing"] + check["mismatched"]
        raise ServiceError(
            f"rebalance verification failed for {len(damaged)} "
            f"objects: {damaged[:5]}"
        )
    return {"experiment": "shards-rebalance", "results": results}


def _cmd_shards_heal(args: argparse.Namespace) -> dict:
    from .errors import ServiceError
    from .service.remote import RemoteBlobBackend

    backend = _open_shard_backend(args)
    if not isinstance(backend, RemoteBlobBackend):
        raise ServiceError(
            "heal converges replicas and the write-through cache; "
            "it only applies to a remote backend (--backend remote)"
        )
    rows = []
    totals = {"pushed": 0, "pulled": 0, "objects": 0}
    for index in range(backend.shard_count):
        report = backend.open_shard(index).heal()
        rows.append({"shard": index, **report})
        for field in totals:
            totals[field] += report[field]
    if not args.json:
        print(format_table(
            ["shard", "objects", "pushed", "pulled"],
            [[r["shard"], r["objects"], r["pushed"], r["pulled"]]
             for r in rows],
            title=f"heal: {totals['objects']} objects converged, "
                  f"{totals['pushed']} pushed up, "
                  f"{totals['pulled']} pulled down",
        ))
    return {
        "experiment": "shards-heal",
        "results": {"shards": rows, **totals},
    }


def _add_backend_flag(subparser: argparse.ArgumentParser) -> None:
    from .fastpath.backend import BACKENDS

    subparser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="simulation backend: des (reference), batch "
             "(vectorized, bit-identical to des), analytical "
             "(closed-form estimate), auto (batch where supported); "
             "default $REPRO_BACKEND, then des",
    )


def _add_resume_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--resume", metavar="DIR", default=None,
        help="checkpoint completed trials in DIR and skip them when "
             "re-run with the same parameters (results are "
             "bit-identical to an uninterrupted run)",
    )


def _add_retries_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-run a trial up to N times after a transient worker "
             "failure before giving up (default 0: fail fast)",
    )


def _add_telemetry_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="append the run manifest (metrics, config digest, "
             "timings) as one JSON line to PATH",
    )


def _add_json_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--json", action="store_true",
        help="emit the run manifest (with results) as JSON on stdout "
             "instead of the human table",
    )
    _add_telemetry_flag(subparser)


def _add_cache_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="trace-store root: reuse stored traces on a key hit, "
             "record fresh ones on a miss (results are bit-identical "
             "either way; default $REPRO_TRACE_CACHE)",
    )
    subparser.add_argument(
        "--no-cache", action="store_true",
        help="always simulate, even when $REPRO_TRACE_CACHE is set",
    )


#: The default TCP port of the experiment daemon (``repro serve``).
DEFAULT_SERVICE_PORT = 8631


def _add_service_conn_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--host", default="127.0.0.1",
                     help="daemon address (default 127.0.0.1)")
    sub.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                     help=f"daemon port (default {DEFAULT_SERVICE_PORT})")


def _add_fingerprint_shape_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--sites", type=int, default=16)
    sub.add_argument("--trace-ms", type=float, default=5000.0)


def _add_filesize_shape_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--steps", type=int, default=8)
    sub.add_argument("--trials", type=int, default=2)


def build_parser() -> argparse.ArgumentParser:
    from ._version import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uncore Encore (MICRO 2023) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--seed", type=int, default=0,
                        help="experiment seed (default 0)")
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for independent trials "
                             "(default 1 or $REPRO_WORKERS; 0 = all "
                             "CPUs; results are identical for every "
                             "value)")
    parser.set_defaults(json=False, telemetry=None)
    commands = parser.add_subparsers(dest="command", required=True)

    transmit = commands.add_parser(
        "transmit", help="send a message through UF-variation"
    )
    transmit.add_argument("--message", default="UFS!")
    transmit.add_argument("--interval-ms", type=float, default=28.0)
    transmit.add_argument("--cross-processor", action="store_true")
    transmit.add_argument("--traffic", action="store_true",
                          help="drive with the traffic loop instead "
                               "of the stalling loop")
    _add_telemetry_flag(transmit)
    transmit.set_defaults(handler=_cmd_transmit)

    characterize = commands.add_parser(
        "characterize", help="the Figure 3 frequency matrix (excerpt)"
    )
    _add_telemetry_flag(characterize)
    characterize.set_defaults(handler=_cmd_characterize)

    capacity = commands.add_parser(
        "capacity", help="the Figure 10 capacity sweep"
    )
    capacity.add_argument("--bits", type=int, default=150)
    capacity.add_argument("--cross-processor", action="store_true")
    capacity.add_argument("--intervals", type=float, nargs="+",
                          metavar="MS", default=None,
                          help="interval lengths (ms) to sweep "
                               "(default: the Figure 10 grid)")
    _add_backend_flag(capacity)
    _add_resume_flag(capacity)
    _add_retries_flag(capacity)
    _add_json_flag(capacity)
    capacity.set_defaults(handler=_cmd_capacity)

    stress = commands.add_parser(
        "stress", help="the Table 2 stress-ng reliability row"
    )
    stress.add_argument("--threads", type=int, default=9)
    stress.add_argument("--bits", type=int, default=100)
    _add_json_flag(stress)
    stress.set_defaults(handler=_cmd_stress)

    defenses = commands.add_parser(
        "defenses", help="the Section 6.1 countermeasure study"
    )
    defenses.add_argument("--bits", type=int, default=60)
    defenses.add_argument("--energy", action="store_true",
                          help="also run the energy-overhead study")
    _add_backend_flag(defenses)
    _add_resume_flag(defenses)
    _add_retries_flag(defenses)
    _add_json_flag(defenses)
    defenses.set_defaults(handler=_cmd_defenses)

    compare = commands.add_parser(
        "compare",
        help="the Table 3 channel x scenario comparison",
        description="Run every covert channel in every defensive "
                    "scenario and grade functionality, reproducing "
                    "Table 3.  Cells are graded against the paper's "
                    "published marks.  DES only: the matrix mixes "
                    "non-UFS channels the vectorized backends do not "
                    "model.",
    )
    compare.add_argument("--bits", type=int, default=24)
    _add_backend_flag(compare)
    _add_json_flag(compare)
    compare.set_defaults(handler=_cmd_compare)

    fingerprint = commands.add_parser(
        "fingerprint", help="the Figure 12 website fingerprinting study"
    )
    _add_fingerprint_shape_flags(fingerprint)
    _add_cache_flags(fingerprint)
    _add_resume_flag(fingerprint)
    _add_json_flag(fingerprint)
    fingerprint.set_defaults(handler=_cmd_fingerprint)

    filesize = commands.add_parser(
        "filesize", help="the Figure 11 file-size profiling study"
    )
    _add_filesize_shape_flags(filesize)
    _add_cache_flags(filesize)
    _add_json_flag(filesize)
    filesize.set_defaults(handler=_cmd_filesize)

    trace = commands.add_parser(
        "trace",
        help="trace store: record, replay, ls, gc, verify",
        description="Manage the content-addressed trace store: record "
                    "study corpora, replay them through the "
                    "classifiers without simulating, and inspect, "
                    "garbage-collect or integrity-check the store.",
    )
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)

    record = trace_commands.add_parser(
        "record", help="simulate a study and store its traces"
    )
    record.add_argument("experiment",
                        choices=("fingerprint", "filesize"))
    record.add_argument("--cache-dir", metavar="DIR", required=True,
                        help="trace-store root to record into")
    _add_fingerprint_shape_flags(record)
    _add_filesize_shape_flags(record)
    _add_telemetry_flag(record)
    record.set_defaults(handler=_cmd_trace_record)

    replay = trace_commands.add_parser(
        "replay",
        help="classify stored traces without touching the simulator",
    )
    replay.add_argument("experiment",
                        choices=("fingerprint", "filesize"))
    replay.add_argument("--cache-dir", metavar="DIR", required=True,
                        help="trace-store root to replay from")
    replay.add_argument("--classifier",
                        choices=("rnn", "knn", "gru"), default="rnn",
                        help="fingerprint model (default rnn)")
    replay.add_argument("--sharded", action="store_true",
                        help="the corpus was recorded in sharded "
                             "(workers > 1) mode")
    _add_fingerprint_shape_flags(replay)
    _add_filesize_shape_flags(replay)
    _add_json_flag(replay)
    replay.set_defaults(handler=_cmd_trace_replay)

    ls = trace_commands.add_parser(
        "ls", help="list the stored corpora"
    )
    ls.add_argument("--cache-dir", metavar="DIR", required=True)
    _add_json_flag(ls)
    ls.set_defaults(handler=_cmd_trace_ls)

    gc = trace_commands.add_parser(
        "gc", help="evict least-recently-used corpora over a size cap"
    )
    gc.add_argument("--cache-dir", metavar="DIR", required=True)
    gc.add_argument("--max-bytes", type=int, required=True,
                    help="target store size in bytes")
    _add_json_flag(gc)
    gc.set_defaults(handler=_cmd_trace_gc)

    verify = trace_commands.add_parser(
        "verify",
        help="integrity-check every stored corpus (exit 2 on damage)",
    )
    verify.add_argument("--cache-dir", metavar="DIR", required=True)
    verify.add_argument("--quarantine", action="store_true",
                        help="move corrupt blobs to quarantine/ "
                             "instead of leaving them in place")
    _add_json_flag(verify)
    verify.set_defaults(handler=_cmd_trace_verify)

    validate = commands.add_parser(
        "validate",
        help="fuzz the simulator against its invariant oracles",
        description="Generate seed-addressed random scenarios and "
                    "check every one against the simulator's "
                    "invariants (monotone time, on-grid frequencies, "
                    "exact PMU cadence, Shannon-bounded capacity, "
                    "telemetry transparency).  Failures are shrunk to "
                    "a minimal scenario and written as a replayable "
                    "repro file.  Exit 2 on any violation.",
    )
    # Accepted here as well as globally, so the natural spelling
    # ``repro validate --seed 1 --scenarios 500`` works; SUPPRESS
    # leaves the global value untouched when the flag is absent.
    validate.add_argument("--seed", type=int,
                          default=argparse.SUPPRESS,
                          help="experiment seed (default 0)")
    validate.add_argument("--workers", type=int,
                          default=argparse.SUPPRESS,
                          help="processes for scenario fan-out "
                               "(0 = all CPUs)")
    validate.add_argument("--scenarios", type=int, default=100,
                          help="number of fuzzed scenarios (default "
                               "100)")
    validate.add_argument("--repro-dir", metavar="DIR", default=None,
                          help="where to write the shrunk repro file "
                               "for the first failure")
    validate.add_argument("--plant-fault", metavar="NAME", default=None,
                          help="arm a named fault injector in every "
                               "scenario (canary mode: the run MUST "
                               "fail)")
    validate.add_argument("--replay", metavar="FILE", default=None,
                          help="re-run a repro file instead of "
                               "fuzzing; exit 0 if the recorded "
                               "failure reproduces")
    validate.add_argument("--differential", action="store_true",
                          help="run the differential suite (serial vs "
                               "parallel, cold vs warm store, live vs "
                               "replay) instead of fuzzing")
    _add_backend_flag(validate)
    _add_resume_flag(validate)
    _add_json_flag(validate)
    validate.set_defaults(handler=_cmd_validate)

    chaos = commands.add_parser(
        "chaos",
        help="inject the fault matrix and prove every fault contained",
        description="Run every injected fault — crashed trials, killed "
                    "workers, an interrupted sweep, flipped CRCs, a "
                    "torn store index, a half-written temp file, a "
                    "breaker storm and a stressed channel — through "
                    "the matching resilience mechanism.  Exit 0 only "
                    "if every fault is contained with bit-identical "
                    "results.",
    )
    chaos.add_argument("--seed", type=int,
                       default=argparse.SUPPRESS,
                       help="experiment seed (default 0)")
    chaos.add_argument("--workers", type=int,
                       default=argparse.SUPPRESS,
                       help="processes for the pool-rebuild checks "
                            "(0 = all CPUs)")
    chaos.add_argument("--workdir", metavar="DIR", default=None,
                       help="keep the chaos scratch state (stores, "
                            "checkpoints) in DIR instead of a "
                            "temporary directory")
    chaos.add_argument("--faults", metavar="NAME", nargs="+",
                       default=None,
                       help="run only these faults (default: all)")
    _add_json_flag(chaos)
    chaos.set_defaults(handler=_cmd_chaos)

    serve = commands.add_parser(
        "serve",
        help="run the experiment daemon (async HTTP/JSON job API)",
        description="Start the experiment service: a multi-tenant job "
                    "queue, work-stealing worker pools and a sharded "
                    "result cache behind an HTTP/JSON API.  Submit "
                    "work with `repro submit`, poll it with `repro "
                    "status` / `repro result`, stop the daemon with "
                    "POST /v1/shutdown.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                       help=f"bind port (default {DEFAULT_SERVICE_PORT}; "
                            f"0 = ephemeral)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="sharded result-store root; repeated "
                            "submissions are served from it without "
                            "recomputing (default: no cache)")
    serve.add_argument("--shards", type=int, default=8,
                       help="shard count for the result store "
                            "(default 8)")
    serve.add_argument("--pools", type=int, default=2,
                       help="worker pools (default 2)")
    serve.add_argument("--pool-workers", type=int, default=2,
                       help="worker threads per pool (default 2)")
    serve.add_argument("--queue-depth", type=int, default=1024,
                       help="total queued-job cap before submissions "
                            "get 429 (default 1024)")
    serve.add_argument("--max-per-tenant", type=int, default=None,
                       help="per-tenant queued-job cap (default: "
                            "no per-tenant cap)")
    serve.add_argument("--backend", dest="store_backend",
                       choices=("local", "remote"), default="local",
                       help="result-store backend: local shard "
                            "directories, or remote replicated blob "
                            "shards with quorum reads and a "
                            "write-through cache (default local)")
    serve.add_argument("--replication", type=int, default=3,
                       help="replicas per remote shard (default 3; "
                            "remote backend only)")
    serve.add_argument("--read-quorum", type=int, default=None,
                       help="replicas that must agree on a read "
                            "(default: majority; remote backend only)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to let in-flight jobs finish on "
                            "shutdown before cancelling the rest "
                            "(default 30)")
    _add_resume_flag(serve)
    serve.set_defaults(handler=_cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit a job to a running `repro serve` daemon"
    )
    submit.add_argument("experiment",
                        help="servable experiment name (capacity_sweep, "
                             "measure_capacity, mean_error_over_seeds, "
                             "evaluate_defenses)")
    submit.add_argument("--params", metavar="JSON", default=None,
                        help="experiment parameters as a JSON object")
    submit.add_argument("--tenant", default="default",
                        help="tenant for fair queueing (default "
                             "'default')")
    submit.add_argument("--priority", type=int, default=0,
                        help="within-tenant priority (higher first; "
                             "default 0)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print "
                             "the result record")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait with --wait (default 600)")
    _add_backend_flag(submit)
    _add_service_conn_flags(submit)
    submit.set_defaults(handler=_cmd_submit)

    status = commands.add_parser(
        "status", help="show a submitted job's state"
    )
    status.add_argument("job_id")
    _add_service_conn_flags(status)
    status.set_defaults(handler=_cmd_status)

    result = commands.add_parser(
        "result", help="fetch a submitted job's result"
    )
    result.add_argument("job_id")
    result.add_argument("--no-wait", dest="wait", action="store_false",
                        help="return the current record even if the "
                             "job is still running")
    result.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait for completion "
                             "(default 600)")
    _add_service_conn_flags(result)
    result.set_defaults(handler=_cmd_result)

    shards = commands.add_parser(
        "shards",
        help="shard topology: status, rebalance, heal",
        description="Inspect and reshape a sharded result store.  "
                    "`status` reports per-shard health (replica "
                    "reachability and breaker state on a remote "
                    "backend), `rebalance` migrates the keyspace to a "
                    "new shard count with a checkpointed, resumable "
                    "plan and proves every object bit-identical "
                    "afterwards, `heal` converges remote replicas "
                    "with the degraded-mode write-through cache.",
    )
    shards_commands = shards.add_subparsers(dest="shards_command",
                                            required=True)

    def _add_shards_store_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--store", metavar="DIR", required=True,
                         help="result-store root (the daemon's "
                              "--store)")
        sub.add_argument("--backend", dest="store_backend",
                         choices=("auto", "local", "remote"),
                         default="auto",
                         help="backend kind (default: discover from "
                              "the on-disk layout)")
        sub.add_argument("--shards", type=int, default=None,
                         help="shard count (default: discovered; pass "
                              "explicitly when the top shards are "
                              "still empty)")
        sub.add_argument("--replication", type=int, default=None,
                         help="replicas per remote shard (default: "
                              "discovered)")

    shards_status = shards_commands.add_parser(
        "status", help="per-shard health and replica reachability"
    )
    _add_shards_store_flags(shards_status)
    _add_json_flag(shards_status)
    shards_status.set_defaults(handler=_cmd_shards_status)

    shards_rebalance = shards_commands.add_parser(
        "rebalance",
        help="migrate the keyspace to a new shard count "
             "(checkpointed, resumable, verified bit-identical)",
    )
    _add_shards_store_flags(shards_rebalance)
    shards_rebalance.add_argument(
        "--to", type=int, required=True, metavar="N",
        help="target shard count",
    )
    shards_rebalance.add_argument(
        "--resume", metavar="DIR", default=None,
        help="checkpoint each completed move in DIR; re-running after "
             "a crash skips the recorded moves (the checkpoint is "
             "keyed by the plan digest, so a changed plan never "
             "replays a stale checkpoint)",
    )
    _add_json_flag(shards_rebalance)
    shards_rebalance.set_defaults(handler=_cmd_shards_rebalance)

    shards_heal = shards_commands.add_parser(
        "heal",
        help="converge remote replicas and the write-through cache",
    )
    _add_shards_store_flags(shards_heal)
    _add_json_flag(shards_heal)
    shards_heal.set_defaults(handler=_cmd_shards_heal)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    from concurrent.futures.process import BrokenProcessPool

    from .config import RunnerConfig, default_platform_config
    from .errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        if args.workers is None:
            # Resolved here, not at parser build time, so a bad
            # REPRO_WORKERS yields a clean error (and --help works).
            args.workers = RunnerConfig.from_env().workers
        else:
            RunnerConfig(workers=args.workers).validate()

        if not (args.telemetry or args.json):
            args.handler(args)
            return 0

        from .analysis.export import manifest_to_json, write_manifest
        from .telemetry import MetricsRegistry, build_manifest, using

        registry = MetricsRegistry()
        start = time.perf_counter()
        with using(registry):
            payload = args.handler(args)
        wall_time_s = time.perf_counter() - start
        manifest = build_manifest(
            payload["experiment"],
            registry=registry,
            seed=args.seed,
            workers=args.workers,
            platform=default_platform_config(),
            wall_time_s=wall_time_s,
            results=payload["results"],
            backend=payload.get("backend"),
        )
        if args.telemetry:
            write_manifest(args.telemetry, manifest)
        if args.json:
            print(manifest_to_json(manifest))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenProcessPool:
        # A worker died hard enough that the retry machinery could not
        # rebuild around it (or the command does not retry).
        print("error: a worker process died (killed by the OS or out "
              "of memory) — reduce --workers, add --retries, or "
              "re-run with --resume to pick up where it stopped",
              file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Conventional 128 + SIGINT.  Checkpointed commands flush on
        # the way out, so an interrupted run resumes with --resume.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
