"""Command-line front end: run the paper's experiments from a shell.

::

    python -m repro transmit --message "UFS!" --interval-ms 28
    python -m repro characterize
    python -m repro capacity --cross-processor --bits 150
    python -m repro stress --threads 4
    python -m repro defenses
    python -m repro fingerprint --sites 16
    python -m repro filesize

Every subcommand accepts ``--seed`` for reproducibility and prints the
same row format the benchmark harness uses.  ``--workers N`` (or
``REPRO_WORKERS``) fans independent trials out across processes where a
command supports it (``capacity``, ``stress``, ``defenses``,
``fingerprint``); worker count never changes the results, only the wall
time.

Observability: every subcommand takes ``--telemetry PATH``, appending
a run manifest —
config digest, seed, wall time, simulated time and the full metric
snapshot — as one JSON line to PATH.  The experiment commands also take
``--json``, replacing the human tables with the manifest (including the
results) on stdout.  Telemetry is strictly observational: results are
byte-identical with it on or off.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis import format_table


def _cmd_transmit(args: argparse.Namespace) -> dict:
    from .core import ChannelConfig, SenderMode, UFVariationChannel
    from .platform import System
    from .units import ms

    system = System(seed=args.seed)
    channel = UFVariationChannel(
        system,
        config=ChannelConfig(interval_ns=ms(args.interval_ms)),
        receiver_socket=1 if args.cross_processor else 0,
        sender_mode=(
            SenderMode.TRAFFIC if args.traffic else SenderMode.STALL
        ),
    )
    bits = [
        (byte >> shift) & 1
        for byte in args.message.encode()
        for shift in range(7, -1, -1)
    ]
    result = channel.transmit(bits)
    received = bytearray()
    for offset in range(0, len(result.received) - 7, 8):
        value = 0
        for bit in result.received[offset:offset + 8]:
            value = (value << 1) | bit
        received.append(value)
    print(f"sent:     {args.message!r} ({len(bits)} bits)")
    print(f"received: {received.decode(errors='replace')!r}")
    print(f"BER: {100 * result.error_rate:.1f} %   capacity: "
          f"{result.capacity_bps:.1f} bit/s")
    channel.shutdown()
    system.stop()
    return {
        "experiment": "transmit",
        "results": {
            "bits": len(bits),
            "error_rate": result.error_rate,
            "capacity_bps": result.capacity_bps,
        },
    }


def _cmd_characterize(args: argparse.Namespace) -> dict:
    import numpy as np

    from .platform import System
    from .platform.tracing import frequency_trace
    from .units import ms
    from .workloads import L2PointerChaseLoop, TrafficLoop

    counts = (1, 2, 3, 4, 8, 16)
    rows = []
    for kind in ("None", "0-hop", "1-hop", "2-hop", "3-hop"):
        row = [kind]
        for threads in counts:
            system = System(seed=args.seed)
            for index in range(threads):
                if kind == "None":
                    workload = L2PointerChaseLoop(f"l2-{index}")
                else:
                    workload = TrafficLoop(f"t-{index}",
                                           hops=int(kind[0]))
                system.launch(workload, 0, index)
            system.run_ms(900)
            _, freqs = frequency_trace(
                system.socket(0).pmu.timeline,
                system.now - ms(300), system.now, ms(1),
            )
            row.append(f"{float(np.median(freqs)) / 1000:.1f}")
            system.stop()
        rows.append(row)
    print(format_table(
        ["traffic"] + [str(c) for c in counts], rows,
        title="median uncore frequency (GHz) vs thread count "
              "(Figure 3 excerpt)",
    ))
    return {
        "experiment": "characterize",
        "results": {
            "thread_counts": list(counts),
            "median_ghz": {row[0]: row[1:] for row in rows},
        },
    }


def _cmd_capacity(args: argparse.Namespace) -> dict:
    from .core.evaluation import DEFAULT_INTERVALS_MS, capacity_sweep

    intervals = (
        tuple(args.intervals) if args.intervals else DEFAULT_INTERVALS_MS
    )
    sweep = capacity_sweep(
        intervals_ms=intervals,
        bits=args.bits,
        cross_processor=args.cross_processor,
        seed=args.seed,
        workers=args.workers,
    )
    if not args.json:
        rows = [
            [f"{p.interval_ms:.0f}", f"{p.raw_rate_bps:.1f}",
             f"{100 * p.error_rate:.1f}", f"{p.capacity_bps:.1f}"]
            for p in sweep
        ]
        label = ("cross-processor" if args.cross_processor
                 else "cross-core")
        best = sweep.peak()
        print(format_table(
            ["interval (ms)", "raw (bps)", "BER (%)",
             "capacity (bit/s)"],
            rows,
            title=f"{label} capacity sweep; peak "
                  f"{best.capacity_bps:.1f} bit/s",
        ))
    return {
        "experiment": "capacity",
        "results": {
            "points": sweep.points,
            "summary": sweep.summarize(),
        },
    }


def _cmd_stress(args: argparse.Namespace) -> dict:
    from .core.reliability import stress_table

    cells = stress_table(
        args.threads, bits=args.bits, seed=args.seed,
        workers=args.workers,
    )
    if not args.json:
        rows = [
            [
                cell.stress_threads,
                f"{cell.capacity_bps:.1f}",
                f"{100 * cell.error_rate:.0f}",
            ]
            for cell in cells
        ]
        print(format_table(
            ["N", "capacity (bit/s)", "BER (%)"], rows,
            title="UF-variation under stress-ng --cache N (Table 2)",
        ))
    return {"experiment": "stress", "results": {"cells": cells}}


def _cmd_defenses(args: argparse.Namespace) -> dict:
    from .defenses import analytics_energy_overhead, evaluate_defenses

    reports = evaluate_defenses(
        bits=args.bits, seed=args.seed, workers=args.workers
    )
    if not args.json:
        rows = [
            [
                r.defense,
                f"{100 * r.error_rate:.1f}",
                f"{r.capacity_bps:.1f}",
                "stopped" if r.channel_stopped else "functional",
            ]
            for r in reports
        ]
        print(format_table(
            ["defense", "BER (%)", "capacity", "verdict"], rows,
            title="UF-variation vs countermeasures (Section 6.1)",
        ))
    results: dict = {"reports": reports}
    if args.energy:
        energy = analytics_energy_overhead(seed=args.seed)
        results["energy"] = energy
        if not args.json:
            print(f"\nfixed-at-max energy overhead on analytics: "
                  f"{energy.overhead_percent:.1f} % (paper: ~7 %)")
    return {"experiment": "defenses", "results": results}


def _cmd_fingerprint(args: argparse.Namespace) -> dict:
    from .sidechannel import collect_dataset, run_fingerprinting_study
    from .sidechannel.rnn import RnnConfig

    dataset = collect_dataset(
        num_sites=args.sites, train_visits=3, test_visits=2,
        trace_ms=args.trace_ms, seed=args.seed, workers=args.workers,
    )
    result = run_fingerprinting_study(
        dataset,
        rnn_config=RnnConfig(num_classes=args.sites, epochs=400,
                             seed=args.seed),
    )
    if not args.json:
        print(f"sites: {args.sites}  attack traces: "
              f"{result.test_traces}")
        print(f"RNN top-1: {100 * result.top1:.1f} %  "
              f"top-5: {100 * result.top5:.1f} %  "
              f"(paper, 100 sites: 82.18 / 91.48)")
    return {"experiment": "fingerprint", "results": result}


def _cmd_filesize(args: argparse.Namespace) -> dict:
    from .sidechannel import run_filesize_study

    study = run_filesize_study(
        sizes_kb=tuple(300.0 * s for s in range(1, args.steps + 1)),
        trials=args.trials,
        seed=args.seed,
    )
    if not args.json:
        print(f"file-size profiling at 300 KB granularity over "
              f"{len(study.runs)} runs: {100 * study.accuracy:.1f} % "
              "(paper: > 99 %)")
    return {
        "experiment": "filesize",
        "results": {"accuracy": study.accuracy, "study": study},
    }


def _add_telemetry_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="append the run manifest (metrics, config digest, "
             "timings) as one JSON line to PATH",
    )


def _add_json_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--json", action="store_true",
        help="emit the run manifest (with results) as JSON on stdout "
             "instead of the human table",
    )
    _add_telemetry_flag(subparser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uncore Encore (MICRO 2023) reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="experiment seed (default 0)")
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for independent trials "
                             "(default 1 or $REPRO_WORKERS; 0 = all "
                             "CPUs; results are identical for every "
                             "value)")
    parser.set_defaults(json=False, telemetry=None)
    commands = parser.add_subparsers(dest="command", required=True)

    transmit = commands.add_parser(
        "transmit", help="send a message through UF-variation"
    )
    transmit.add_argument("--message", default="UFS!")
    transmit.add_argument("--interval-ms", type=float, default=28.0)
    transmit.add_argument("--cross-processor", action="store_true")
    transmit.add_argument("--traffic", action="store_true",
                          help="drive with the traffic loop instead "
                               "of the stalling loop")
    _add_telemetry_flag(transmit)
    transmit.set_defaults(handler=_cmd_transmit)

    characterize = commands.add_parser(
        "characterize", help="the Figure 3 frequency matrix (excerpt)"
    )
    _add_telemetry_flag(characterize)
    characterize.set_defaults(handler=_cmd_characterize)

    capacity = commands.add_parser(
        "capacity", help="the Figure 10 capacity sweep"
    )
    capacity.add_argument("--bits", type=int, default=150)
    capacity.add_argument("--cross-processor", action="store_true")
    capacity.add_argument("--intervals", type=float, nargs="+",
                          metavar="MS", default=None,
                          help="interval lengths (ms) to sweep "
                               "(default: the Figure 10 grid)")
    _add_json_flag(capacity)
    capacity.set_defaults(handler=_cmd_capacity)

    stress = commands.add_parser(
        "stress", help="the Table 2 stress-ng reliability row"
    )
    stress.add_argument("--threads", type=int, default=9)
    stress.add_argument("--bits", type=int, default=100)
    _add_json_flag(stress)
    stress.set_defaults(handler=_cmd_stress)

    defenses = commands.add_parser(
        "defenses", help="the Section 6.1 countermeasure study"
    )
    defenses.add_argument("--bits", type=int, default=60)
    defenses.add_argument("--energy", action="store_true",
                          help="also run the energy-overhead study")
    _add_json_flag(defenses)
    defenses.set_defaults(handler=_cmd_defenses)

    fingerprint = commands.add_parser(
        "fingerprint", help="the Figure 12 website fingerprinting study"
    )
    fingerprint.add_argument("--sites", type=int, default=16)
    fingerprint.add_argument("--trace-ms", type=float, default=5000.0)
    _add_json_flag(fingerprint)
    fingerprint.set_defaults(handler=_cmd_fingerprint)

    filesize = commands.add_parser(
        "filesize", help="the Figure 11 file-size profiling study"
    )
    filesize.add_argument("--steps", type=int, default=8)
    filesize.add_argument("--trials", type=int, default=2)
    _add_json_flag(filesize)
    filesize.set_defaults(handler=_cmd_filesize)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    from .config import RunnerConfig, default_platform_config
    from .errors import ConfigError

    args = build_parser().parse_args(argv)
    try:
        if args.workers is None:
            # Resolved here, not at parser build time, so a bad
            # REPRO_WORKERS yields a clean error (and --help works).
            args.workers = RunnerConfig.from_env().workers
        else:
            RunnerConfig(workers=args.workers).validate()

        if not (args.telemetry or args.json):
            args.handler(args)
            return 0

        from .analysis.export import manifest_to_json, write_manifest
        from .telemetry import MetricsRegistry, build_manifest, using

        registry = MetricsRegistry()
        start = time.perf_counter()
        with using(registry):
            payload = args.handler(args)
        wall_time_s = time.perf_counter() - start
        manifest = build_manifest(
            payload["experiment"],
            registry=registry,
            seed=args.seed,
            workers=args.workers,
            platform=default_platform_config(),
            wall_time_s=wall_time_s,
            results=payload["results"],
        )
        if args.telemetry:
            write_manifest(args.telemetry, manifest)
        if args.json:
            print(manifest_to_json(manifest))
        return 0
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
