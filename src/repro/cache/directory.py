"""Coherence directory (snoop filter) for one socket.

Skylake-SP couples each LLC slice with a directory slice (Figure 2).
Because the LLC is non-inclusive, a line can live in a core's private
cache without an LLC copy; the directory records which cores hold which
lines so an access that misses the LLC can still be served by a
cache-to-cache transfer instead of DRAM.

The directory has *bounded capacity*: it is set-associative over the
same index space as the LLC.  When a set overflows, the least-recently
recorded entry is evicted and the corresponding line is
**back-invalidated** out of every private cache — the mechanism behind
directory-conflict attacks on non-inclusive LLCs (Yan et al., cited as
[63]) and the reason congruent-address flooding can displace a line
from *another* core's private cache.

The data-reuse covert channels depend on the directory both ways: in
Flush+Reload the receiver's reload is fast when the *sender's* private
cache holds the line (directory snoop hit), and in Reload+Refresh the
receiver's congruent refresh set overflows the directory set, flushing
the sender's stale copy between bits.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

#: Private-cache copies tracked per directory set.  Sized to the L2
#: associativity: one core's worth of congruent lines just fits, two
#: parties' worth overflows (the attack precondition).
DEFAULT_DIRECTORY_WAYS = 16


class CoherenceDirectory:
    """Set-associative snoop filter with LRU back-invalidation."""

    def __init__(self, num_sets: int = 2048,
                 ways: int = DEFAULT_DIRECTORY_WAYS,
                 index_fn: Callable[[int], int] | None = None) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("directory geometry must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self._index_fn = index_fn
        # Per set: line -> set of holder core ids, in LRU order
        # (first entry = least recently recorded).
        self._sets: list[OrderedDict[int, set[int]]] = [
            OrderedDict() for _ in range(num_sets)
        ]
        self._back_invalidate: Callable[[int], None] | None = None
        self.snoop_hits = 0
        self.snoop_misses = 0
        self.back_invalidations = 0

    def set_back_invalidate(self,
                            callback: Callable[[int], None]) -> None:
        """Install the private-cache invalidation hook (the hierarchy)."""
        self._back_invalidate = callback

    def _index(self, line: int) -> int:
        if self._index_fn is not None:
            return self._index_fn(line)
        return line % self.num_sets

    def record_fill(self, line: int, core_id: int) -> None:
        """A core's private cache gained a copy of ``line``.

        May evict another entry from the directory set, back-invalidating
        its line from every private cache.
        """
        entries = self._sets[self._index(line)]
        if line in entries:
            entries[line].add(core_id)
            entries.move_to_end(line)
            return
        if len(entries) >= self.ways:
            victim_line, _holders = entries.popitem(last=False)
            self.back_invalidations += 1
            if self._back_invalidate is not None:
                self._back_invalidate(victim_line)
        entries[line] = {core_id}

    def record_eviction(self, line: int, core_id: int) -> None:
        """A core's private cache lost its copy of ``line``."""
        entries = self._sets[self._index(line)]
        holders = entries.get(line)
        if holders is None:
            return
        holders.discard(core_id)
        if not holders:
            del entries[line]

    def record_invalidation(self, line: int) -> None:
        """``line`` was flushed system-wide (clflush semantics)."""
        self._sets[self._index(line)].pop(line, None)

    def holders(self, line: int) -> frozenset[int]:
        """Core ids whose private caches hold ``line``."""
        entries = self._sets[self._index(line)]
        return frozenset(entries.get(line, frozenset()))

    def remote_holder(self, line: int, requesting_core: int) -> int | None:
        """A core other than the requester holding ``line``, if any.

        Updates snoop statistics; used on the LLC-miss path to decide
        between a cache-to-cache transfer and a DRAM access.
        """
        for core_id in self.holders(line):
            if core_id != requesting_core:
                self.snoop_hits += 1
                return core_id
        self.snoop_misses += 1
        return None

    def tracked_lines(self) -> int:
        """Number of lines with at least one private-cache holder."""
        return sum(len(entries) for entries in self._sets)
