"""Replacement policies for set-associative caches.

Each policy instance manages one set of ``ways`` slots.  Policies see
only way indices — the cache supplies which way was touched or filled —
so they are reusable across cache levels.

The paper's eviction-list construction (Section 3.1) assumes LRU
ordering in the L2 ("assuming the LRU policy"), so :class:`LRUPolicy`
is the default everywhere.  :class:`TreePLRUPolicy` and
:class:`RandomPolicy` exist for sensitivity studies: the ablation bench
shows UF-variation is indifferent to the LLC policy while Prime+Probe's
priming efficiency is not.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class ReplacementPolicy(ABC):
    """Victim selection and usage tracking for one cache set."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("a set needs at least one way")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""

    @abstractmethod
    def fill(self, way: int) -> None:
        """Record that ``way`` was (re)filled with a new line."""

    @abstractmethod
    def victim(self, occupied: list[bool]) -> int:
        """Choose the way to evict.  Prefers an unoccupied way."""

    def invalidate(self, way: int) -> None:
        """Record that ``way`` was invalidated (default: no-op)."""


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used ordering (a recency stack per set)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # _stack[0] is most recent; contains each way exactly once.
        self._stack: list[int] = list(range(ways))

    def touch(self, way: int) -> None:
        self._stack.remove(way)
        self._stack.insert(0, way)

    def fill(self, way: int) -> None:
        self.touch(way)

    def victim(self, occupied: list[bool]) -> int:
        for way in reversed(self._stack):
            if not occupied[way]:
                return way
        return self._stack[-1]

    def recency_order(self) -> list[int]:
        """Ways from most to least recently used (for tests)."""
        return list(self._stack)


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, as used by many real L1/L2 designs.

    Requires a power-of-two way count; maintains ``ways - 1`` internal
    bits arranged as a binary tree.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1) != 0:
            raise ValueError("tree PLRU needs a power-of-two way count")
        self._bits = [0] * (ways - 1)

    def _update(self, way: int) -> None:
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                self._bits[node] = 1  # point away: right is older
                node = 2 * node + 1
                high = mid
            else:
                self._bits[node] = 0
                node = 2 * node + 2
                low = mid

    def touch(self, way: int) -> None:
        self._update(way)

    def fill(self, way: int) -> None:
        self._update(way)

    def victim(self, occupied: list[bool]) -> int:
        for way, used in enumerate(occupied):
            if not used:
                return way
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if self._bits[node]:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded, deterministic)."""

    def __init__(self, ways: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(ways)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def touch(self, way: int) -> None:
        pass

    def fill(self, way: int) -> None:
        pass

    def victim(self, occupied: list[bool]) -> int:
        for way, used in enumerate(occupied):
            if not used:
                return way
        return int(self._rng.integers(self.ways))


def make_policy(kind: str, ways: int,
                rng: np.random.Generator | None = None) -> ReplacementPolicy:
    """Factory keyed by policy name: ``lru``, ``plru`` or ``random``."""
    if kind == "lru":
        return LRUPolicy(ways)
    if kind == "plru":
        return TreePLRUPolicy(ways)
    if kind == "random":
        return RandomPolicy(ways, rng)
    raise ValueError(f"unknown replacement policy {kind!r}")
