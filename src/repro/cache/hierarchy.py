"""The per-socket cache hierarchy: private L1/L2, sliced victim LLC.

Access semantics (Skylake-SP non-inclusive LLC, Table 1):

1. L1 lookup; hit serves from L1.
2. L2 lookup; hit refills L1 (L2 is inclusive of L1, so an L2 eviction
   back-invalidates L1).
3. LLC lookup in the slice selected by the slice hash; a hit *moves* the
   line to the requesting core's L2 (victim-cache semantics) and drops
   the LLC copy.
4. On an LLC miss the directory is snooped: a remote private-cache
   holder yields a cache-to-cache transfer; otherwise DRAM.
5. DRAM fills go to L1+L2 only; lines enter the LLC when evicted from an
   L2.  This is exactly why the paper's eviction lists need
   ``W_L2 <= m <= W_L2 + W_LLC`` addresses per list (Section 3.1): the
   L2-resident portion cycles through the LLC slice between reuses.

The hierarchy also implements ``clflush`` (system-wide invalidation, a
prerequisite of the flush-based channels) and a minimal transactional
read-set monitor (the abort signal Prime+Abort keys on).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import SocketConfig
from ..errors import ChannelError
from .cache import SetAssociativeCache
from .directory import CoherenceDirectory
from .slice_hash import Indexer, SliceHash


class Level(enum.Enum):
    """Where an access was served from."""

    L1 = "L1"
    L2 = "L2"
    LLC = "LLC"
    REMOTE_CACHE = "remote-cache"
    DRAM = "DRAM"


@dataclass(frozen=True)
class AccessOutcome:
    """The result of one load: service level and the LLC slice touched.

    ``slice_id`` is the slice the line hashes to — populated whenever the
    access travelled past the private caches (LLC, remote or DRAM), since
    the request is routed to the home slice either way.
    """

    level: Level
    slice_id: int | None
    line: int

    @property
    def reached_uncore(self) -> bool:
        """Whether the access left the core's private caches."""
        return self.level not in (Level.L1, Level.L2)


class CacheStats:
    """Lifetime access counters for one hierarchy (telemetry harvest).

    Plain ``__slots__`` ints bumped on the load path — cheap enough to
    stay always-on; the telemetry layer reads them at teardown.
    """

    __slots__ = ("loads", "l1_hits", "l2_hits", "llc_hits",
                 "remote_hits", "dram_fills", "clflushes")

    def __init__(self) -> None:
        self.loads = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.llc_hits = 0
        self.remote_hits = 0
        self.dram_fills = 0
        self.clflushes = 0


class _Transaction:
    """An active TSX-style transaction tracking a read set."""

    def __init__(self, core_id: int, read_set: frozenset[int]) -> None:
        self.core_id = core_id
        self.read_set = read_set
        self.aborted = False


class CacheHierarchy:
    """All caches of one socket plus directory and transaction monitor."""

    def __init__(
        self,
        config: SocketConfig,
        *,
        llc_indexer_factory=None,
        slice_hash: SliceHash | None = None,
        llc_policy: str = "lru",
    ) -> None:
        self.config = config
        self.num_cores = config.num_cores
        self._l1 = [
            SetAssociativeCache(config.l1_config, name=f"L1-{i}")
            for i in range(self.num_cores)
        ]
        self._l2 = [
            SetAssociativeCache(config.l2_config, name=f"L2-{i}")
            for i in range(self.num_cores)
        ]
        num_slices = self.num_cores  # one slice per enabled core tile
        self.slice_hash = (
            slice_hash if slice_hash is not None else SliceHash(num_slices)
        )

        self._llc_indexer_factory = llc_indexer_factory

        def _make_indexer(slice_id: int) -> Indexer | None:
            if llc_indexer_factory is None:
                return None
            return llc_indexer_factory(slice_id)

        self._llc = [
            SetAssociativeCache(
                config.llc_slice_config,
                policy=llc_policy,
                indexer=_make_indexer(i),
                name=f"LLC-{i}",
            )
            for i in range(num_slices)
        ]
        self._directories = self._make_directories()
        self.stats = CacheStats()
        self._transactions: dict[int, _Transaction] = {}
        for slice_cache in self._llc:
            slice_cache.add_eviction_listener(self._on_llc_eviction)

    def _make_directories(self) -> list[CoherenceDirectory]:
        """One directory per LLC slice (co-located, Figure 2).

        Each directory shares its slice's index space; a randomized-LLC
        design randomizes its directories the same way (otherwise the
        directory would leak the very conflicts the LLC hides), so the
        indexer factory covers both.  Distribution per slice also means
        slice partitioning partitions the directories — a fine-grained
        defense that split the LLC but left a monolithic snoop filter
        would leak through directory conflicts.
        """
        directories = []
        for slice_id in range(len(self._llc)):
            index_fn = None
            if self._llc_indexer_factory is not None:
                indexer = self._llc_indexer_factory(0xD100 + slice_id)
                index_fn = indexer.index
            directory = CoherenceDirectory(
                num_sets=self.config.llc_slice_config.num_sets,
                index_fn=index_fn,
            )
            directory.set_back_invalidate(
                self._on_directory_back_invalidate
            )
            directories.append(directory)
        return directories

    def directory_of(self, line: int,
                     slice_hash: SliceHash | None = None,
                     ) -> CoherenceDirectory:
        """The directory slice responsible for ``line``."""
        hash_fn = slice_hash if slice_hash is not None else self.slice_hash
        return self._directories[hash_fn.slice_of(line)]

    @property
    def directory_back_invalidations(self) -> int:
        """Total back-invalidations across all directory slices."""
        return sum(d.back_invalidations for d in self._directories)

    def _on_directory_back_invalidate(self, line: int) -> None:
        """Directory set overflow: purge the line from private caches.

        On real silicon the victim is written back to the LLC or memory;
        we drop it to memory (the timing-relevant effect — the line
        leaving the private caches — is identical, and the congruent
        flood that caused the overflow would evict an LLC copy anyway).
        """
        for core_id in range(self.num_cores):
            self._l1[core_id].invalidate(line)
            self._l2[core_id].invalidate(line)
        self._check_transactions(line)

    # -- cache accessors ---------------------------------------------------

    def l1(self, core_id: int) -> SetAssociativeCache:
        return self._l1[core_id]

    def l2(self, core_id: int) -> SetAssociativeCache:
        return self._l2[core_id]

    def llc_slice(self, slice_id: int) -> SetAssociativeCache:
        return self._llc[slice_id]

    @property
    def num_slices(self) -> int:
        return len(self._llc)

    def slice_of(self, physical_address: int) -> int:
        """The LLC slice id serving a physical address."""
        return self.slice_hash.slice_of(physical_address >> 6)

    # -- the load path -------------------------------------------------------

    def load(self, core_id: int, physical_address: int,
             slice_hash: SliceHash | None = None) -> AccessOutcome:
        """Perform a load from ``core_id``; returns where it was served.

        ``slice_hash`` overrides the socket-wide hash — under the
        fine-grained partitioning defense each security domain routes
        through its own restricted slice set (Section 4.4).
        """
        hash_fn = slice_hash if slice_hash is not None else self.slice_hash
        line = physical_address >> 6
        slice_id = hash_fn.slice_of(line)
        stats = self.stats
        stats.loads += 1

        if self._l1[core_id].lookup(line):
            stats.l1_hits += 1
            return AccessOutcome(Level.L1, None, line)

        if self._l2[core_id].lookup(line):
            stats.l2_hits += 1
            self._fill_l1(core_id, line)
            return AccessOutcome(Level.L2, None, line)

        if self._llc[slice_id].lookup(line):
            # Victim-cache semantics: promote to the private caches and
            # drop the LLC copy.
            stats.llc_hits += 1
            self._llc[slice_id].invalidate(line)
            self._fill_private(core_id, line, hash_fn)
            return AccessOutcome(Level.LLC, slice_id, line)

        remote = self._directories[slice_id].remote_holder(line,
                                                           core_id)
        self._fill_private(core_id, line, hash_fn)
        if remote is not None:
            stats.remote_hits += 1
            return AccessOutcome(Level.REMOTE_CACHE, slice_id, line)
        stats.dram_fills += 1
        return AccessOutcome(Level.DRAM, slice_id, line)

    def _fill_l1(self, core_id: int, line: int) -> None:
        self._l1[core_id].insert(line)

    def _fill_private(self, core_id: int, line: int,
                      hash_fn: SliceHash) -> None:
        """Fill L1+L2; cascade the L2 victim into its LLC home slice.

        The victim's directory entry is retired *before* the new line's
        is recorded — the directory set should not transiently overflow
        on a plain replacement.
        """
        victim = self._l2[core_id].insert(line)
        self._l1[core_id].insert(line)
        if victim is not None:
            # Inclusion: the L1 may not keep a line the L2 dropped.
            self._l1[core_id].invalidate(victim)
            victim_slice = hash_fn.slice_of(victim)
            self._directories[victim_slice].record_eviction(victim,
                                                            core_id)
            self._check_transactions(victim)
            self._llc[victim_slice].insert(victim)
        self._directories[hash_fn.slice_of(line)].record_fill(line,
                                                              core_id)

    def _on_llc_eviction(self, line: int) -> None:
        self._check_transactions(line)

    # -- clflush ------------------------------------------------------------

    def clflush(self, physical_address: int,
                slice_hash: SliceHash | None = None) -> bool:
        """Invalidate a line system-wide (every L1/L2/LLC slice).

        Returns whether any copy existed — a cached line takes longer to
        flush (the write-back/invalidate round trip), which is the
        timing signal Flush+Flush decodes.
        """
        hash_fn = slice_hash if slice_hash is not None else self.slice_hash
        line = physical_address >> 6
        self.stats.clflushes += 1
        was_cached = False
        for core_id in range(self.num_cores):
            was_cached |= self._l1[core_id].invalidate(line)
            was_cached |= self._l2[core_id].invalidate(line)
        was_cached |= self._llc[hash_fn.slice_of(line)].invalidate(line)
        self._directories[hash_fn.slice_of(line)].record_invalidation(line)
        self._check_transactions(line)
        return was_cached

    # -- transactional memory (Prime+Abort support) -------------------------

    def begin_transaction(self, core_id: int,
                          read_lines: frozenset[int]) -> None:
        """Open a transaction whose read set is ``read_lines``."""
        if core_id in self._transactions:
            raise ChannelError(f"core {core_id} already in a transaction")
        self._transactions[core_id] = _Transaction(core_id, read_lines)

    def transaction_aborted(self, core_id: int) -> bool:
        """Whether the core's open transaction has aborted."""
        txn = self._transactions.get(core_id)
        if txn is None:
            raise ChannelError(f"core {core_id} has no open transaction")
        return txn.aborted

    def end_transaction(self, core_id: int) -> bool:
        """Close the transaction; returns True if it had aborted."""
        txn = self._transactions.pop(core_id, None)
        if txn is None:
            raise ChannelError(f"core {core_id} has no open transaction")
        return txn.aborted

    def _check_transactions(self, line: int) -> None:
        for txn in self._transactions.values():
            if not txn.aborted and line in txn.read_set:
                txn.aborted = True

    # -- maintenance ---------------------------------------------------------

    def flush_all(self) -> None:
        """Empty every cache (between experiment repetitions)."""
        for cache in (*self._l1, *self._l2, *self._llc):
            cache.flush_all()
        self._transactions.clear()
        self._directories = self._make_directories()
