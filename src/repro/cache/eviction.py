"""Eviction-list construction (Section 3.1 / Listings 1-3).

An eviction list ``EV_s(i)`` is a group of addresses all mapping to L2
set ``i`` and LLC slice ``s``.  The paper's unprivileged attacker builds
them from ordinary allocations by classifying candidate addresses — here
we classify with the same physical information the simulated platform
exposes (the attacker's timing-based recovery of this mapping is a
solved problem the paper cites, so we do not re-derive it per run).

The builder also produces same-LLC-set lists for the Prime+Probe family
and occupancy-scale working sets for the SPP baseline.

Crucially, the builder assumes *standard* cache indexing.  When the
platform runs a randomized-LLC defense the produced "same set" lists
silently stop colliding in the real cache — which is exactly how that
defense breaks the set-conflict channels in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MemoryError_
from ..mem.allocator import AddressSpace
from .hierarchy import CacheHierarchy


@dataclass(frozen=True)
class EvictionSet:
    """A list of congruent addresses (virtual view plus line numbers)."""

    virtual_addresses: tuple[int, ...]
    lines: tuple[int, ...]
    slice_id: int
    l2_set: int | None = None
    llc_set: int | None = None

    def __len__(self) -> int:
        return len(self.virtual_addresses)


class EvictionListBuilder:
    """Searches an address space for congruent addresses.

    Allocates memory in chunks and classifies every line in each chunk
    (vectorised) until the requested number of congruent addresses is
    found.  All results are cached lines of *this* address space, so two
    actors (sender/receiver) each build their own lists, as in the paper.
    """

    _CHUNK_PAGES = 4096  # 16 MB of 4 KB pages per search round

    def __init__(self, space: AddressSpace, hierarchy: CacheHierarchy,
                 *, slice_hash=None, max_search_bytes: int = 1 << 31) -> None:
        self.space = space
        self.hierarchy = hierarchy
        # Under fine-grained partitioning an actor's accesses route with
        # its domain-restricted hash, so congruence must be classified
        # with the same function.
        self.slice_hash = (
            slice_hash if slice_hash is not None else hierarchy.slice_hash
        )
        self.max_search_bytes = max_search_bytes
        self._searched_bytes = 0
        self._virtual: np.ndarray = np.empty(0, dtype=np.int64)
        self._lines: np.ndarray = np.empty(0, dtype=np.uint64)
        self._slices: np.ndarray = np.empty(0, dtype=np.int64)

    @property
    def candidate_count(self) -> int:
        """Number of classified candidate lines so far."""
        return len(self._lines)

    def _grow(self) -> None:
        """Allocate and classify another chunk of candidate pages."""
        page = self.space.page_bytes
        chunk_bytes = self._CHUNK_PAGES * page
        if self._searched_bytes + chunk_bytes > self.max_search_bytes:
            raise MemoryError_(
                "eviction-list search exceeded its memory budget "
                f"({self.max_search_bytes} bytes)"
            )
        allocation = self.space.allocate(chunk_bytes)
        self._searched_bytes += chunk_bytes
        lines_per_page = page // 64
        virtual_pages = range(allocation.virtual_base,
                              allocation.virtual_end, page)
        virt_chunks: list[np.ndarray] = []
        line_chunks: list[np.ndarray] = []
        offsets = np.arange(lines_per_page, dtype=np.int64)
        for virtual_base in virtual_pages:
            physical_base = self.space.translate(virtual_base)
            virt_chunks.append(virtual_base + offsets * 64)
            line_chunks.append(
                ((physical_base >> 6) + offsets).astype(np.uint64)
            )
        new_virtual = np.concatenate(virt_chunks)
        new_lines = np.concatenate(line_chunks)
        new_slices = self.slice_hash.slice_of_array(new_lines)
        self._virtual = np.concatenate([self._virtual, new_virtual])
        self._lines = np.concatenate([self._lines, new_lines])
        self._slices = np.concatenate([self._slices, new_slices])

    def _check_slice(self, slice_id: int) -> None:
        if slice_id not in self.slice_hash.allowed_slices:
            raise MemoryError_(
                f"slice {slice_id} is outside this actor's partition; "
                "no allocation can ever map there"
            )

    def _collect(self, mask_fn, count: int) -> np.ndarray:
        """Indices of candidates satisfying ``mask_fn``; grows on demand."""
        while True:
            mask = mask_fn()
            indices = np.flatnonzero(mask)
            if len(indices) >= count:
                return indices[:count]
            self._grow()

    def build_l2_list(self, slice_id: int, l2_set: int,
                      count: int) -> EvictionSet:
        """Addresses in LLC slice ``slice_id`` and L2 set ``l2_set``.

        This is the ``EV_s(i)`` of Section 3.1: with ``W_L2 <= count <=
        W_L2 + W_LLC`` addresses, cycling through the list in fixed order
        misses L2 every time while hitting the LLC slice.
        """
        self._check_slice(slice_id)
        l2_sets = self.hierarchy.config.l2_config.num_sets

        def mask() -> np.ndarray:
            sets = (self._lines % np.uint64(l2_sets)).astype(np.int64)
            return (sets == l2_set) & (self._slices == slice_id)

        chosen = self._collect(mask, count)
        return EvictionSet(
            virtual_addresses=tuple(int(v) for v in self._virtual[chosen]),
            lines=tuple(int(l) for l in self._lines[chosen]),
            slice_id=slice_id,
            l2_set=l2_set,
        )

    def build_llc_set_list(self, slice_id: int, llc_set: int,
                           count: int) -> EvictionSet:
        """Addresses in slice ``slice_id`` whose *standard* LLC set index
        is ``llc_set`` (the Prime+Probe priming list)."""
        self._check_slice(slice_id)
        llc_sets = self.hierarchy.config.llc_slice_config.num_sets

        def mask() -> np.ndarray:
            sets = (self._lines % np.uint64(llc_sets)).astype(np.int64)
            return (sets == llc_set) & (self._slices == slice_id)

        chosen = self._collect(mask, count)
        return EvictionSet(
            virtual_addresses=tuple(int(v) for v in self._virtual[chosen]),
            lines=tuple(int(l) for l in self._lines[chosen]),
            slice_id=slice_id,
            llc_set=llc_set,
        )

    def build_slice_working_set(self, slice_id: int,
                                count: int) -> EvictionSet:
        """``count`` addresses anywhere in one slice (occupancy channels)."""
        self._check_slice(slice_id)

        def mask() -> np.ndarray:
            return self._slices == slice_id

        chosen = self._collect(mask, count)
        return EvictionSet(
            virtual_addresses=tuple(int(v) for v in self._virtual[chosen]),
            lines=tuple(int(l) for l in self._lines[chosen]),
            slice_id=slice_id,
        )

    def build_l2_set_group(self, l2_set: int, count: int) -> EvictionSet:
        """Addresses sharing one L2 set, with *no* slice constraint.

        Used by occupancy channels (SPP): grouping by L2 set forces the
        lines to cycle between the private L2 and the LLC regardless of
        how the LLC indexes them, so the working set stays observable
        even under randomized LLC indexing.  ``slice_id`` is -1 (mixed).
        """
        l2_sets = self.hierarchy.config.l2_config.num_sets

        def mask() -> np.ndarray:
            sets = (self._lines % np.uint64(l2_sets)).astype(np.int64)
            return sets == l2_set

        chosen = self._collect(mask, count)
        return EvictionSet(
            virtual_addresses=tuple(int(v) for v in self._virtual[chosen]),
            lines=tuple(int(l) for l in self._lines[chosen]),
            slice_id=-1,
            l2_set=l2_set,
        )

    def build_measurement_list(self, slice_id: int, count: int = 20,
                               l2_set: int = 0) -> EvictionSet:
        """The receiver's Listing 3 measurement list.

        Defaults match the paper: 20 addresses (between ``W_L2 = 16`` and
        ``W_L2 + W_LLC = 27``) in one L2 set of one slice.
        """
        return self.build_l2_list(slice_id, l2_set, count)
