"""LLC slice hashing and set indexing.

Intel distributes physical addresses across LLC slices with an
undocumented XOR-based hash (Section 2.1; reverse engineered in
McCalpin's work cited as [46]).  We implement the same family: each
output bit is the XOR-fold of a fixed subset of physical line-address
bits.  The exact bit masks differ per die, but the properties the
channels rely on — uniform distribution and determinism — are shared, so
any full-rank mask set reproduces the behaviour.

Set indexing inside a cache is factored behind :class:`Indexer` so the
randomized-LLC defense can swap a keyed permutation in place of the
conventional modulo indexing without the attacker code changing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

# XOR masks over the line number (physical address >> 6).  One mask per
# hash output bit; patterned after published Skylake slice functions.
_DEFAULT_MASKS = (
    0x1B5F575440,
    0x2EB5FAA880,
    0x3CCCC93100,
    0x1839290940,
)


def _parity(value: int) -> int:
    """Parity of the set bits in ``value``."""
    value ^= value >> 32
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


def _splitmix64(value: int) -> int:
    """A fast 64-bit mixing function (keyed permutation building block)."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & (2**64 - 1)
    return value ^ (value >> 31)


class SliceHash:
    """Maps a physical line number to an LLC slice id.

    ``num_slices`` need not be a power of two: the XOR hash produces a
    wide value that is folded by modulo, matching how dies with disabled
    tiles (our 16-of-28 layout) still spread addresses over the enabled
    slices.  ``allowed_slices`` restricts the output range — this is how
    the fine-grained partitioning defense assigns each security domain
    half of the slices (Section 4.4).
    """

    def __init__(self, num_slices: int,
                 allowed_slices: tuple[int, ...] | None = None,
                 masks: tuple[int, ...] = _DEFAULT_MASKS) -> None:
        if num_slices <= 0:
            raise ValueError("need at least one slice")
        self.num_slices = num_slices
        self.masks = masks
        if allowed_slices is None:
            self.allowed_slices: tuple[int, ...] = tuple(range(num_slices))
        else:
            bad = [s for s in allowed_slices if not 0 <= s < num_slices]
            if bad:
                raise ValueError(f"slice ids out of range: {bad}")
            self.allowed_slices = tuple(allowed_slices)

    def raw_hash(self, line: int) -> int:
        """The unfolded XOR hash value for a line number.

        The masks select *physical address* bits (as published hashes
        are specified), so the line number is shifted back up by the
        6 offset bits before masking.
        """
        address = line << 6
        result = 0
        for bit, mask in enumerate(self.masks):
            result |= _parity(address & mask) << bit
        return result

    def slice_of(self, line: int) -> int:
        """The slice id serving ``line``."""
        mixed = _splitmix64(self.raw_hash(line) ^ (line >> 4))
        return self.allowed_slices[mixed % len(self.allowed_slices)]

    def slice_of_array(self, lines: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`slice_of` over an array of line numbers.

        Used by the eviction-list builder, which classifies hundreds of
        thousands of candidate lines when searching for addresses that
        share an L2 set and an LLC slice (Section 3.1).
        """
        lines = lines.astype(np.uint64, copy=False)
        addresses = lines << np.uint64(6)
        raw = np.zeros_like(lines)
        for bit, mask in enumerate(self.masks):
            parity = np.bitwise_count(
                addresses & np.uint64(mask)
            ) & np.uint64(1)
            raw |= parity << np.uint64(bit)
        mixed = _splitmix64_array(raw ^ (lines >> np.uint64(4)))
        allowed = np.asarray(self.allowed_slices, dtype=np.int64)
        return allowed[(mixed % np.uint64(len(allowed))).astype(np.int64)]

    def restricted(self, allowed: tuple[int, ...]) -> "SliceHash":
        """A copy that only maps into ``allowed`` (partitioned domain)."""
        return SliceHash(self.num_slices, allowed, self.masks)


def _splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_splitmix64` on a uint64 array."""
    with np.errstate(over="ignore"):
        values = values + np.uint64(0x9E3779B97F4A7C15)
        values = (values ^ (values >> np.uint64(30))) * np.uint64(
            0xBF58476D1CE4E5B9
        )
        values = (values ^ (values >> np.uint64(27))) * np.uint64(
            0x94D049BB133111EB
        )
    return values ^ (values >> np.uint64(31))


class Indexer(ABC):
    """Maps a line number to a set index inside one cache."""

    def __init__(self, num_sets: int) -> None:
        if num_sets <= 0:
            raise ValueError("need at least one set")
        self.num_sets = num_sets

    @abstractmethod
    def index(self, line: int) -> int:
        """The set index for ``line``."""


class StandardIndexer(Indexer):
    """Conventional physically-indexed set selection (low line bits)."""

    def index(self, line: int) -> int:
        return line % self.num_sets


class RandomizedIndexer(Indexer):
    """Keyed pseudorandom set mapping (CEASER/ScatterCache-style).

    The key is secret from the attacker's perspective: eviction lists
    built under the standard-indexing assumption scatter across sets, so
    set-conflict channels (Prime+Probe, Prime+Abort) lose their signal,
    while occupancy-statistics channels (SPP) survive — exactly the
    Table 3 "Random. LLC" column.
    """

    def __init__(self, num_sets: int, key: int) -> None:
        super().__init__(num_sets)
        self.key = key & 0xFFFFFFFFFFFFFFFF

    def index(self, line: int) -> int:
        return _splitmix64(line ^ self.key) % self.num_sets
