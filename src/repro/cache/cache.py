"""A generic set-associative cache operating on line addresses.

The cache stores 64-byte-aligned *line numbers* (physical address / 64);
data contents are irrelevant to timing channels.  Evictions are reported
both as return values (so a hierarchy can cascade victims, e.g. L2
victims into the non-inclusive LLC) and through listener callbacks (so a
transactional-memory monitor can observe read-set evictions, which is
what Prime+Abort keys on).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..config import CacheConfig
from .replacement import ReplacementPolicy, make_policy
from .slice_hash import Indexer, StandardIndexer


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.fills = 0
        self.evictions = self.invalidations = 0


@dataclass
class _Set:
    """One cache set: per-way line numbers and a replacement policy."""

    lines: list[int | None]
    policy: ReplacementPolicy
    way_of: dict[int, int] = field(default_factory=dict)


class SetAssociativeCache:
    """Set-associative cache over line numbers with pluggable indexing.

    ``indexer`` maps a line number to a set index; the default is the
    conventional modulo indexing, and :class:`RandomizedIndexer` swaps in
    a keyed permutation to model randomized-LLC defenses (Table 3's
    "Random. LLC" column).
    """

    def __init__(
        self,
        config: CacheConfig,
        *,
        policy: str = "lru",
        indexer: Indexer | None = None,
        name: str | None = None,
    ) -> None:
        config.validate()
        self.config = config
        self.name = name if name is not None else config.name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._indexer: Indexer = (
            indexer if indexer is not None else StandardIndexer(self.num_sets)
        )
        self._sets = [
            _Set(lines=[None] * self.ways, policy=make_policy(policy,
                                                              self.ways))
            for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        self._eviction_listeners: list[Callable[[int], None]] = []

    # -- listeners --------------------------------------------------------

    def add_eviction_listener(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked with each evicted line number."""
        self._eviction_listeners.append(callback)

    def remove_eviction_listener(self,
                                 callback: Callable[[int], None]) -> None:
        """Unregister a previously added eviction listener."""
        self._eviction_listeners.remove(callback)

    def _notify_eviction(self, line: int) -> None:
        for listener in self._eviction_listeners:
            listener(line)

    # -- core operations --------------------------------------------------

    def set_index(self, line: int) -> int:
        """The set this cache maps ``line`` to (indexer-dependent)."""
        return self._indexer.index(line)

    def lookup(self, line: int) -> bool:
        """Probe for ``line``; updates replacement state on a hit."""
        cache_set = self._sets[self._indexer.index(line)]
        way = cache_set.way_of.get(line)
        if way is None:
            self.stats.misses += 1
            return False
        cache_set.policy.touch(way)
        self.stats.hits += 1
        return True

    def contains(self, line: int) -> bool:
        """Probe without side effects (no replacement-state update)."""
        cache_set = self._sets[self._indexer.index(line)]
        return line in cache_set.way_of

    def insert(self, line: int) -> int | None:
        """Fill ``line``; returns the evicted line number, if any."""
        cache_set = self._sets[self._indexer.index(line)]
        if line in cache_set.way_of:
            cache_set.policy.touch(cache_set.way_of[line])
            return None
        occupied = [slot is not None for slot in cache_set.lines]
        way = cache_set.policy.victim(occupied)
        victim = cache_set.lines[way]
        if victim is not None:
            del cache_set.way_of[victim]
            self.stats.evictions += 1
            self._notify_eviction(victim)
        cache_set.lines[way] = line
        cache_set.way_of[line] = way
        cache_set.policy.fill(way)
        self.stats.fills += 1
        return victim

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present (clflush path; not an eviction)."""
        cache_set = self._sets[self._indexer.index(line)]
        way = cache_set.way_of.pop(line, None)
        if way is None:
            return False
        cache_set.lines[way] = None
        cache_set.policy.invalidate(way)
        self.stats.invalidations += 1
        return True

    # -- introspection ----------------------------------------------------

    def lines_in_set(self, index: int) -> list[int]:
        """Line numbers currently resident in set ``index``."""
        return [line for line in self._sets[index].lines if line is not None]

    def occupancy(self) -> int:
        """Total number of valid lines in the cache."""
        return sum(len(s.way_of) for s in self._sets)

    def flush_all(self) -> None:
        """Invalidate every line (used between experiment repetitions)."""
        for cache_set in self._sets:
            cache_set.lines = [None] * self.ways
            cache_set.way_of.clear()
