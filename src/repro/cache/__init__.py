"""Cache substrate: private L1/L2, sliced non-inclusive LLC, directory.

This package models the Skylake-SP cache hierarchy of Table 1 at line
granularity.  It is used by the *microscopic* simulation paths — the
receiver's measurement loop (Listing 3) and the baseline covert channels
of Table 3 — while the macroscopic UFS path works from aggregate access
rates and never touches individual lines.
"""

from .replacement import (
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)
from .cache import CacheStats, SetAssociativeCache
from .slice_hash import (
    RandomizedIndexer,
    SliceHash,
    StandardIndexer,
)
from .directory import CoherenceDirectory
from .hierarchy import AccessOutcome, CacheHierarchy, Level
from .eviction import EvictionListBuilder, EvictionSet

__all__ = [
    "AccessOutcome",
    "CacheHierarchy",
    "CacheStats",
    "CoherenceDirectory",
    "EvictionListBuilder",
    "EvictionSet",
    "LRUPolicy",
    "Level",
    "RandomPolicy",
    "RandomizedIndexer",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "SliceHash",
    "StandardIndexer",
    "TreePLRUPolicy",
    "make_policy",
]
