"""IChannels (Haj-Yahya et al., https://arxiv.org/pdf/2106.05050).

All cores of a package share one voltage regulator, and the power
management unit answers current excursions with a *multi-level,
hysteretic* throttle ladder: one level at a time, each held for a
minimum dwell.  The sender raises and drops the package draw with a
power-virus group; the receiver times a fixed loop whose throughput
carries the ladder state.

This is the stateful sibling of
:class:`~repro.channels.icc_cores.IccCoresChannel`: where IccCores
reads the *instantaneous* regulator pressure, IChannels drives the
:class:`~repro.power.modulation.CurrentThrottleController` state
machine, whose dwell times quantise the symbol clock — the paper's
key observation that throttling hysteresis, not raw draw, sets the
channel's rate and reliability.

The shared resource is per-package, so LLC randomization and
fine-grained uncore partitioning leave the channel intact; coarse
(per-socket) partitioning separates the regulators and breaks it.
"""

from __future__ import annotations

from ..cpu.activity import ActivityProfile
from ..units import ms
from .base import BaselineChannel, Prerequisites
from .icc_cores import POWER_VIRUS_PROFILE

#: Helper cores joining the sender's power-virus group.  Sender plus
#: two helpers put 3.0 draw units on the regulator — at the hard
#: threshold, so the ladder walks to the hard-throttle state.
HELPER_CORES = 2

#: Receiver reference-loop duration when unthrottled (ns).
BASE_LOOP_NS = 2_000.0
#: Relative timing noise of one loop.
NOISE_SIGMA = 0.012
#: Reference loops averaged per symbol.
LOOPS_PER_BIT = 8
#: Ladder walk time: two dwell periods (0 -> soft -> hard) of the
#: default 500 us, plus slack for the 100 us evaluation grid.
SETTLE_NS = ms(1.5)
#: Unwind time back down the ladder after the virus stops.
RECOVER_NS = ms(1.5)


class CurrentThrottleChannel(BaselineChannel):
    """Power-virus bursts vs. the hysteretic throttle ladder."""

    name = "IChannels"
    leakage_source = "Current throttling"

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @property
    def bit_time_ns(self) -> int:
        return ms(3)

    def setup(self) -> None:
        self._rng = self.system.namer.rng("ichannels-noise")
        #: Per-loop measurements ``(time_ns, duration_ns)``.
        self.observations: list[tuple[int, float]] = []
        # The receiver's loop is throttled by its own package's ladder.
        self._throttle = self.receiver.socket.modulation.current
        free = [
            core
            for core in self.sender.socket.cores
            if core.owner is None and core.core_id != self.receiver.core_id
        ]
        self._helpers = free[:HELPER_CORES]
        for core in self._helpers:
            core.claim(f"{self.name}-helper-{core.core_id}")
        high = self._observe_state(1)
        low = self._observe_state(0)
        self._threshold = (low + high) / 2.0

    def _set_virus(self, drawing: bool) -> None:
        now = self.system.now
        profile = POWER_VIRUS_PROFILE if drawing else ActivityProfile()
        if drawing:
            self.sender.set_profile(POWER_VIRUS_PROFILE)
        else:
            self.sender.go_idle()
        for core in self._helpers:
            core.set_profile(now, profile)

    def _timed_reference_loop(self) -> float:
        duration = BASE_LOOP_NS / self._throttle.factor * (
            1.0 + float(self._rng.normal(0.0, NOISE_SIGMA))
        )
        self.system.engine.run_for(max(int(duration), 1))
        self.observations.append((self.system.now, duration))
        return duration

    def _observe_state(self, bit: int) -> float:
        self._set_virus(bool(bit))
        self.system.run_for(SETTLE_NS)
        loops = [self._timed_reference_loop()
                 for _ in range(LOOPS_PER_BIT)]
        self._set_virus(False)
        self.system.run_for(RECOVER_NS)
        return sum(loops) / len(loops)

    def send_and_receive(self, bit: int) -> int:
        mean = self._observe_state(bit)
        return 1 if mean > self._threshold else 0

    def shutdown(self) -> None:
        now = self.system.now
        for core in self._helpers:
            core.set_profile(now, ActivityProfile())
            core.release(now)
        super().shutdown()
