"""Clock-modulation covert channel (https://arxiv.org/pdf/2404.05823).

``IA32_CLOCK_MODULATION`` gates the core clock for a programmable
``k/16`` fraction of a fixed window (T-states).  A sender with write
access to the MSR — a privileged tenant, a misconfigured container
runtime exposing ``/dev/cpu/*/msr``, or power-capping management
software it can influence — modulates the package duty level; any
unprivileged receiver on the same package reads it back by timing a
fixed loop, since the gating slows *everyone's* retirement rate.

The simulated sender drives
:class:`~repro.power.modulation.DutyCycleModulator` directly, playing
that privileged role.  Duty changes land only on window boundaries,
which quantises the symbol clock to the window period — the defining
timing signature of the clock-modulation channel family.

Per-package again: only coarse (per-socket) partitioning separates
the parties; caches and the uncore are not involved at all.
"""

from __future__ import annotations

from ..units import ms
from .base import BaselineChannel, Prerequisites

#: Duty level encoding a 1 bit (of the default 16-step grid): half
#: throughput, far outside loop-timing noise.
DUTY_ONE = 8

#: Receiver reference-loop duration at full duty (ns).
BASE_LOOP_NS = 2_000.0
#: Relative timing noise of one loop.
NOISE_SIGMA = 0.012
#: Reference loops averaged per symbol.
LOOPS_PER_BIT = 8
#: Settle time: at least one window boundary (default 1 ms) must pass
#: before a requested duty level is in force.
SETTLE_NS = ms(1.2)
#: Recovery time back to full duty after the symbol.
RECOVER_NS = ms(1.2)


class DutyCycleChannel(BaselineChannel):
    """MSR-driven duty cycling vs. an unprivileged timing loop."""

    name = "ClockModCovert"
    leakage_source = "T-state duty cycle"

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @property
    def bit_time_ns(self) -> int:
        return ms(2.5)

    def setup(self) -> None:
        self._rng = self.system.namer.rng("clockmod-noise")
        #: Per-loop measurements ``(time_ns, duration_ns)``.
        self.observations: list[tuple[int, float]] = []
        # The sender writes its own package's modulation MSR; the
        # receiver is gated by its own package's duty level.
        self._modulator = self.sender.socket.modulation.clockmod
        self._receiver_clock = self.receiver.socket.modulation.clockmod
        high = self._observe_state(1)
        low = self._observe_state(0)
        self._threshold = (low + high) / 2.0

    def _timed_reference_loop(self) -> float:
        duration = BASE_LOOP_NS / self._receiver_clock.duty_fraction * (
            1.0 + float(self._rng.normal(0.0, NOISE_SIGMA))
        )
        self.system.engine.run_for(max(int(duration), 1))
        self.observations.append((self.system.now, duration))
        return duration

    def _observe_state(self, bit: int) -> float:
        self._modulator.set_duty(
            DUTY_ONE if bit else self._modulator.config.duty_steps
        )
        self.system.run_for(SETTLE_NS)
        loops = [self._timed_reference_loop()
                 for _ in range(LOOPS_PER_BIT)]
        self._modulator.set_duty(self._modulator.config.duty_steps)
        self.system.run_for(RECOVER_NS)
        return sum(loops) / len(loops)

    def send_and_receive(self, bit: int) -> int:
        mean = self._observe_state(bit)
        return 1 if mean > self._threshold else 0
