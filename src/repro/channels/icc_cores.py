"""IccCoresCovert (Haj-Yahya et al., "IChannels" [30]).

Current-management contention: all cores of a package share a voltage
regulator, and the power-management unit throttles instruction
throughput while servicing large current swings.  The sender toggles a
power-virus loop; the receiver times a fixed arithmetic loop and reads
the throttling.

The shared resource is the *per-socket* PMU/regulator, not the caches
or the interconnect — so LLC randomization and even fine-grained
uncore partitioning leave it intact, and only coarse (per-socket)
partitioning separates the parties (Table 3; the paper notes a
per-core regulator would be the targeted fix).
"""

from __future__ import annotations

from ..cpu.activity import ActivityProfile
from ..units import us
from .base import BaselineChannel, Prerequisites

#: The sender's power-virus profile: dense wide-vector compute, private
#: caches only, maximum draw on the shared regulator.
POWER_VIRUS_PROFILE = ActivityProfile(
    active=True, l2_rate_per_us=200.0, stall_ratio=0.05, power_weight=1.0
)

#: Receiver reference-loop duration when unthrottled (ns).
BASE_LOOP_NS = 2_000.0
#: Relative slowdown while the regulator services the virus.
THROTTLE_FACTOR = 0.09
#: Measurement noise (relative).
NOISE_SIGMA = 0.012


class IccCoresChannel(BaselineChannel):
    """Power-virus toggling vs. a timed arithmetic loop."""

    name = "IccCoresCovert"
    leakage_source = "PMU contention"

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @property
    def bit_time_ns(self) -> int:
        return us(40)

    def setup(self) -> None:
        self._rng = self.system.namer.rng("icc-cores-noise")
        self._threshold = BASE_LOOP_NS * (1.0 + THROTTLE_FACTOR / 2.0)

    def _socket_power_pressure(self) -> float:
        """Total regulator draw on the *receiver's* socket right now."""
        now = self.system.now
        return sum(
            core.profile_at(now).power_weight
            for core in self.receiver.socket.cores
        )

    def _timed_reference_loop(self) -> float:
        pressure = self._socket_power_pressure()
        throttle = THROTTLE_FACTOR if pressure >= 1.0 else 0.0
        duration = BASE_LOOP_NS * (
            1.0 + throttle + float(self._rng.normal(0.0, NOISE_SIGMA))
        )
        self.system.engine.run_for(max(int(duration), 1))
        return duration

    def send_and_receive(self, bit: int) -> int:
        if bit:
            self.sender.set_profile(POWER_VIRUS_PROFILE)
        else:
            self.sender.go_idle()
        self.system.run_for(us(4))
        # Average a few reference loops for stability.
        loops = [self._timed_reference_loop() for _ in range(8)]
        self.sender.go_idle()
        self.system.run_for(us(10))
        mean = sum(loops) / len(loops)
        return 1 if mean > self._threshold else 0
