"""Shared scaffolding for the baseline covert channels.

Every baseline is a :class:`BaselineChannel`: two unprivileged actors
(sender on one core, receiver on another), a per-bit encode/decode pair
and a common transmit loop.  Construction raises
:class:`~repro.errors.PrerequisiteError` when the platform lacks a
required feature — that is how the prerequisite columns of Table 3 are
evaluated — and defenses break channels mechanically, surfacing as a
~50 % bit error rate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..analysis.entropy import channel_capacity_bps
from ..analysis.stats import bit_error_rate
from ..errors import ChannelError
from ..platform.actor import Actor
from ..platform.system import System

#: BER below which a channel counts as functional in the Table 3 matrix
#: (a broken channel decodes at chance, i.e. ~50 %).
FUNCTIONAL_BER_THRESHOLD = 0.25


@dataclass(frozen=True)
class Prerequisites:
    """Platform features a channel needs beyond co-location."""

    shared_memory: bool = False
    clflush: bool = False
    tsx: bool = False


@dataclass(frozen=True)
class ChannelOutcome:
    """Result of one baseline transmission."""

    sent: tuple[int, ...]
    received: tuple[int, ...]
    bit_time_ns: int

    @property
    def error_rate(self) -> float:
        return bit_error_rate(list(self.sent), list(self.received))

    @property
    def functional(self) -> bool:
        return self.error_rate < FUNCTIONAL_BER_THRESHOLD

    @property
    def raw_rate_bps(self) -> float:
        return 1e9 / self.bit_time_ns if self.bit_time_ns else 0.0

    @property
    def capacity_bps(self) -> float:
        return channel_capacity_bps(self.raw_rate_bps, self.error_rate)


class BaselineChannel(ABC):
    """A sender/receiver pair implementing one prior covert channel."""

    #: Human-readable name, matching the Table 3 row label.
    name: str = "baseline"
    #: The Table 3 "leakage source" column.
    leakage_source: str = ""

    def __init__(
        self,
        system: System,
        *,
        sender_socket: int = 0,
        sender_core: int = 0,
        receiver_socket: int = 0,
        receiver_core: int = 8,
        sender_domain: int = 0,
        receiver_domain: int = 0,
    ) -> None:
        self.system = system
        self.sender: Actor = system.create_actor(
            f"{self.name}-sender", sender_socket, sender_core,
            domain=sender_domain,
        )
        self.receiver: Actor = system.create_actor(
            f"{self.name}-receiver", receiver_socket, receiver_core,
            domain=receiver_domain,
        )
        self.cross_socket = sender_socket != receiver_socket
        self.setup()

    # -- channel-specific hooks ----------------------------------------------

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        """Features this channel requires (Table 3 prerequisite columns)."""
        return Prerequisites()

    @classmethod
    def platform_transform(cls, config):
        """Adjust the platform this channel is evaluated on.

        Most channels run on the stock Table 1 platform.  Occupancy
        channels override this to scale the LLC geometry down so that
        cache-filling working sets stay tractable to simulate — the
        mechanics (associativity, indexing, victim flow) are unchanged.
        """
        return config

    @abstractmethod
    def setup(self) -> None:
        """Build eviction sets / shared segments / calibration."""

    @abstractmethod
    def send_and_receive(self, bit: int) -> int:
        """Transmit one bit and return the receiver's decode."""

    @property
    @abstractmethod
    def bit_time_ns(self) -> int:
        """Nominal duration of one bit slot."""

    # -- the common transmit loop ------------------------------------------------

    def transmit(self, bits: list[int]) -> ChannelOutcome:
        """Run the per-bit protocol over a bit string."""
        if any(bit not in (0, 1) for bit in bits):
            raise ChannelError("message must be a list of 0/1 bits")
        received = [self.send_and_receive(bit) for bit in bits]
        return ChannelOutcome(
            sent=tuple(bits),
            received=tuple(received),
            bit_time_ns=self.bit_time_ns,
        )

    def shutdown(self) -> None:
        """Release both actors' cores."""
        self.sender.retire()
        self.receiver.retire()
