"""The prior frequency/power/cache covert channels compared in Table 3.

Fourteen channels (including UF-variation, which lives in
:mod:`repro.core`) are evaluated against prerequisites (shared memory,
clflush, TSX), defenses (randomized LLC, fine-grained partitioning,
coarse-grained partitioning) and background noise (``stress-ng --cache
4``).  Each baseline is implemented mechanically on the simulated
platform — the check/cross matrix *emerges* from the cache, mesh and
power models rather than being hard-coded.

Beyond the paper's own Table 3 rows, three sibling frequency/power
channels from PAPERS.md ride the same harness: TurboCC (turbo bins,
arxiv 2007.07046), IChannels (current-management throttling, arxiv
2106.05050) and the clock-modulation duty-cycle channel (arxiv
2404.05823), all built on :mod:`repro.power.modulation`.
"""

from .base import BaselineChannel, ChannelOutcome, Prerequisites
from .flush_reload import FlushReloadChannel
from .flush_flush import FlushFlushChannel
from .reload_refresh import ReloadRefreshChannel
from .prime_probe import PrimeProbeChannel
from .prime_abort import PrimeAbortChannel
from .spp import SppChannel
from .mesh_contention import MeshContentionChannel
from .ring_contention import RingContentionChannel
from .icc_cores import IccCoresChannel
from .uncore_idle import UncoreIdleChannel
from .turbo_boost import TurboBoostChannel
from .current_throttle import CurrentThrottleChannel
from .duty_cycle import DutyCycleChannel
from .scenarios import Scenario, build_scenario_system, SCENARIOS
from .comparison import (
    ALL_CHANNELS,
    CHANNELS_BY_NAME,
    EXTENDED_TABLE3,
    ComparisonCell,
    evaluate_channel,
    comparison_matrix,
)
from .capture import (
    OBSERVING_CHANNELS,
    capture_channel_trace,
    simulate_channel_trace,
)

__all__ = [
    "ALL_CHANNELS",
    "BaselineChannel",
    "CHANNELS_BY_NAME",
    "ChannelOutcome",
    "ComparisonCell",
    "CurrentThrottleChannel",
    "DutyCycleChannel",
    "EXTENDED_TABLE3",
    "FlushFlushChannel",
    "FlushReloadChannel",
    "IccCoresChannel",
    "MeshContentionChannel",
    "OBSERVING_CHANNELS",
    "Prerequisites",
    "PrimeAbortChannel",
    "PrimeProbeChannel",
    "ReloadRefreshChannel",
    "RingContentionChannel",
    "SCENARIOS",
    "Scenario",
    "SppChannel",
    "TurboBoostChannel",
    "UncoreIdleChannel",
    "build_scenario_system",
    "capture_channel_trace",
    "comparison_matrix",
    "evaluate_channel",
    "simulate_channel_trace",
]
