"""The prior uncore covert channels compared in Table 3.

Eleven channels (including UF-variation, which lives in
:mod:`repro.core`) are evaluated against prerequisites (shared memory,
clflush, TSX), defenses (randomized LLC, fine-grained partitioning,
coarse-grained partitioning) and background noise (``stress-ng --cache
4``).  Each baseline is implemented mechanically on the simulated
platform — the check/cross matrix *emerges* from the cache, mesh and
power models rather than being hard-coded.
"""

from .base import BaselineChannel, ChannelOutcome, Prerequisites
from .flush_reload import FlushReloadChannel
from .flush_flush import FlushFlushChannel
from .reload_refresh import ReloadRefreshChannel
from .prime_probe import PrimeProbeChannel
from .prime_abort import PrimeAbortChannel
from .spp import SppChannel
from .mesh_contention import MeshContentionChannel
from .ring_contention import RingContentionChannel
from .icc_cores import IccCoresChannel
from .uncore_idle import UncoreIdleChannel
from .scenarios import Scenario, build_scenario_system, SCENARIOS
from .comparison import (
    ALL_CHANNELS,
    ComparisonCell,
    evaluate_channel,
    comparison_matrix,
)

__all__ = [
    "ALL_CHANNELS",
    "BaselineChannel",
    "ChannelOutcome",
    "ComparisonCell",
    "FlushFlushChannel",
    "FlushReloadChannel",
    "IccCoresChannel",
    "MeshContentionChannel",
    "Prerequisites",
    "PrimeAbortChannel",
    "PrimeProbeChannel",
    "ReloadRefreshChannel",
    "RingContentionChannel",
    "SCENARIOS",
    "Scenario",
    "SppChannel",
    "UncoreIdleChannel",
    "build_scenario_system",
    "comparison_matrix",
    "evaluate_channel",
]
