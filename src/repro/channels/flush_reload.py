"""Flush+Reload (Yarom & Falkner, cited as [65]).

The classic data-reuse channel: sender and receiver share a memory
page.  Per bit, the receiver flushes the target line; the sender
accesses it to send a "1" (re-caching it) or stays quiet for a "0";
the receiver then reloads the line and times it — a cached line (LLC or
a cache-to-cache transfer from the sender's private cache) is far
faster than DRAM.

Prerequisites: shared memory and ``clflush`` (Table 3).  Survives
randomized LLC indexing (no set conflicts involved); dies under both
partitioning schemes because cross-domain page sharing is forbidden.
"""

from __future__ import annotations

from ..cache.hierarchy import Level
from ..units import us
from .base import BaselineChannel, Prerequisites


class FlushReloadChannel(BaselineChannel):
    """Flush -> (sender reload?) -> timed reload."""

    name = "Flush+Reload"
    leakage_source = "Data reuse"

    #: Reload latencies above this (cycles) mean the line came from DRAM.
    DRAM_THRESHOLD_CYCLES = 140.0

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites(shared_memory=True, clflush=True)

    @property
    def bit_time_ns(self) -> int:
        return us(5)

    def setup(self) -> None:
        segment = self.sender.share_segment(4096)
        sender_map = self.sender.map_segment(segment)
        receiver_map = self.receiver.map_segment(segment)
        self._sender_target = sender_map.virtual_base
        self._receiver_target = receiver_map.virtual_base

    def send_and_receive(self, bit: int) -> int:
        self.receiver.clflush(self._receiver_target)
        if bit:
            self.sender.timed_load(self._sender_target)
        else:
            self.system.run_for(us(1))
        record = self.receiver.timed_load(self._receiver_target)
        # Either an LLC copy or a snoop hit in the sender's private
        # cache counts as "reused".
        if record.level in (Level.LLC, Level.REMOTE_CACHE):
            return 1
        return 1 if record.latency_cycles < self.DRAM_THRESHOLD_CYCLES \
            else 0
