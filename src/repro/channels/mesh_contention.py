"""Mesh interconnect contention (Dai et al., "Don't Mesh Around" [11]).

The receiver repeatedly times LLC loads whose route crosses several
mesh links; the sender modulates heavy LLC traffic over an overlapping
route.  Contention on the shared link inflates the receiver's latency
by a measurable constant.

No prerequisites beyond co-location; survives randomized LLC indexing
(latency, not set conflicts).  Killed by time-multiplexed (fine) NoC
partitioning — cross-domain flows never share a slot — and trivially by
coarse partitioning (no shared mesh).  (Table 3.)
"""

from __future__ import annotations

from ..errors import ChannelError
from ..units import us
from ..workloads.loops import traffic_profile
from .base import BaselineChannel, Prerequisites


class MeshContentionChannel(BaselineChannel):
    """Timed far-slice loads vs. a modulated competing flow."""

    name = "Mesh-contention"
    leakage_source = "Interconnect contention"

    #: Receiver probing distance: a long route crosses more links.
    PROBE_HOPS = 3
    #: Latency inflation (cycles) that decodes as "1".
    DELTA_THRESHOLD_CYCLES = 3.0
    #: Length of the receiver's per-bit measurement window.
    MEASURE_NS = us(120)

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @property
    def bit_time_ns(self) -> int:
        return us(400)

    def setup(self) -> None:
        self._probe_set = self.receiver.build_measurement_list(
            hops=self.PROBE_HOPS
        )
        self.receiver.warm_list(self._probe_set)
        self._sender_slice = self._pick_contending_slice()
        hops = self.sender.socket.hops(self.sender.core_id,
                                       self._sender_slice)
        self._sender_profile = traffic_profile(hops)

    def _pick_contending_slice(self) -> int:
        """A slice whose route from the sender shares a mesh link with
        the receiver's probe route."""
        if self.cross_socket:
            # No shared mesh; any target will (correctly) never contend.
            return self.sender.local_slice()
        mesh = self.sender.socket.mesh
        probe_route = set(
            mesh.core_slice_route(self.receiver.core_id,
                                  self._probe_set.slice_id)
        )
        for slice_id in range(mesh.num_cores):
            route = mesh.core_slice_route(self.sender.core_id, slice_id)
            if probe_route & set(route):
                return slice_id
        # The probe route always ends at the slice ingress port, which
        # the sender can reach from anywhere.
        raise ChannelError(
            "no sender route overlaps the receiver's probe route"
        )

    def send_and_receive(self, bit: int) -> int:
        """Differential decode: quiet half-slot vs. driven half-slot.

        Measuring both halves within the same bit keeps the slowly
        moving uncore frequency (which the sender's heavy traffic also
        drags around) common-mode; only the link contention differs.
        """
        self.sender.go_idle()
        self.system.run_for(us(10))
        quiet = self.receiver.measure_window(self._probe_set,
                                             self.MEASURE_NS)
        if bit:
            self.sender.set_profile(self._sender_profile,
                                    self._sender_slice)
        self.system.run_for(us(10))
        driven = self.receiver.measure_window(self._probe_set,
                                              self.MEASURE_NS)
        self.sender.go_idle()
        remaining = self.bit_time_ns - 2 * self.MEASURE_NS - us(20)
        if remaining > 0:
            self.system.run_for(remaining)
        return 1 if driven - quiet > self.DELTA_THRESHOLD_CYCLES else 0
