"""Ring interconnect contention (Paccagnella et al., "Lord of the
Ring(s)" [50]).

The ring-bus analogue of the mesh channel: the receiver times loads
whose ring segments the sender's traffic must share, in the same
direction.  Our experiment platform is a mesh part, so the channel is
evaluated against a ring abstraction layered over the same socket: the
enabled tiles become ring stops (how client parts and pre-Skylake
Xeons arrange them) and contention is tracked per directed segment.

Table 3 profile: no prerequisites, survives randomized LLC, dies under
time-multiplexed scheduling (fine partitioning) and under coarse
partitioning (each socket has its own ring).
"""

from __future__ import annotations

from ..cache.hierarchy import Level
from ..noc.contention import ContentionTracker
from ..noc.ring import RingTopology
from ..units import us
from .base import BaselineChannel, Prerequisites


class RingContentionChannel(BaselineChannel):
    """Timed cross-ring loads vs. a modulated competing ring flow."""

    name = "Ring-contention"
    leakage_source = "Interconnect contention"

    DELTA_THRESHOLD_CYCLES = 3.0
    SAMPLES_PER_WINDOW = 600
    #: Competing flow rate, in the traffic-loop unit.
    SENDER_RATE_PER_US = 160.0

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @property
    def bit_time_ns(self) -> int:
        return us(300)

    def setup(self) -> None:
        self.ring = RingTopology(self.receiver.socket.num_cores)
        self.tracker = ContentionTracker(
            time_multiplexed=self.system.security.fine_partition
        )
        # Receiver probes the slice halfway around the ring; the sender
        # pushes traffic across an overlapping arc.
        stops = self.ring.num_stops
        self._recv_src = self.receiver.core_id
        self._recv_dst = (self.receiver.core_id + stops // 2 - 1) % stops
        self._send_src = (self.receiver.core_id + 2) % stops
        self._send_dst = (self._send_src + stops // 2 - 1) % stops
        self._recv_route = self.ring.route(self._recv_src, self._recv_dst)
        self._send_route = self.ring.route(self._send_src, self._send_dst)
        self._sender_flow: int | None = None
        self._ring_hops = self.ring.distance(self._recv_src,
                                             self._recv_dst)

    def _drive(self, on: bool) -> None:
        if self._sender_flow is not None:
            self.tracker.remove_flow(self._sender_flow)
            self._sender_flow = None
        if on and not self.cross_socket:
            # A remote-socket sender has no stop on this ring.
            self._sender_flow = self.tracker.add_flow(
                self._send_route,
                self.SENDER_RATE_PER_US,
                domain=self.sender.domain,
            )

    def _measure(self) -> float:
        """Mean latency of timed loads across the receiver's arc."""
        model = self.system.latency_model
        flows = self.tracker.route_contention(
            self._recv_route, observer_domain=self.receiver.domain
        ) / self.SENDER_RATE_PER_US
        mhz = self.receiver.socket.uncore_freq_mhz
        samples = model.sample_many(
            self.SAMPLES_PER_WINDOW, Level.LLC, self._ring_hops, mhz,
            flows,
        )
        mean = float(samples.mean()) + model.window_bias()
        iter_ns = model.loop_iteration_ns(mean, self.receiver.core.freq_mhz)
        self.system.engine.run_for(
            max(int(iter_ns * self.SAMPLES_PER_WINDOW), 1)
        )
        return mean

    def send_and_receive(self, bit: int) -> int:
        self._drive(False)
        quiet = self._measure()
        self._drive(bool(bit))
        driven = self._measure()
        self._drive(False)
        self.system.run_for(us(40))
        return 1 if driven - quiet > self.DELTA_THRESHOLD_CYCLES else 0
