"""The Table 3 comparison harness.

Runs every channel in every scenario and reports functionality.  A
channel is *not functional* when:

* construction fails on a missing prerequisite or an impossible
  allocation (e.g. a NUMA-strict platform refusing a cross-socket
  shared mapping) — the platform simply cannot host it; or
* the measured bit error rate is at chance level — the defense removed
  the signal mechanically.

UF-variation participates through an adapter so the whole Table 3 row
set is produced by one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.channel import UFVariationChannel
from ..core.evaluation import random_bits
from ..core.protocol import ChannelConfig
from ..engine.parallel import Trial, run_trials
from ..errors import ChannelError, MemoryError_, PrerequisiteError
from ..units import ms
from ..workloads.stressor import launch_stressor_threads
from .base import FUNCTIONAL_BER_THRESHOLD, BaselineChannel
from .current_throttle import CurrentThrottleChannel
from .duty_cycle import DutyCycleChannel
from .flush_flush import FlushFlushChannel
from .flush_reload import FlushReloadChannel
from .icc_cores import IccCoresChannel
from .mesh_contention import MeshContentionChannel
from .prime_abort import PrimeAbortChannel
from .prime_probe import PrimeProbeChannel
from .reload_refresh import ReloadRefreshChannel
from .ring_contention import RingContentionChannel
from ..platform.system import System
from .scenarios import SCENARIOS, Scenario
from .spp import SppChannel
from .turbo_boost import TurboBoostChannel
from .uncore_idle import UncoreIdleChannel


class UFVariationAdapter:
    """Presents UF-variation with the BaselineChannel interface."""

    name = "UF-variation"
    leakage_source = "UFS"

    def __init__(self, system, *, sender_socket=0, sender_core=0,
                 receiver_socket=0, receiver_core=8, sender_domain=0,
                 receiver_domain=0):
        # Stall several cores so background load cannot dilute the
        # stalled fraction below 1/3 (Section 4.3.3).
        free = [
            core.core_id
            for core in system.socket(sender_socket).cores
            if core.owner is None and core.core_id != receiver_core
        ]
        sender_cores = tuple(free[:6]) if len(free) >= 6 else (
            sender_core,
        )
        # The noise-tolerant operating point of Table 2: a 60 ms
        # interval rides out stressor phases that a faster setting
        # cannot.
        self._channel = UFVariationChannel(
            system,
            config=ChannelConfig(interval_ns=ms(60)),
            sender_socket=sender_socket,
            sender_cores=sender_cores,
            receiver_socket=receiver_socket,
            receiver_core=receiver_core,
            sender_domain=sender_domain,
            receiver_domain=receiver_domain,
        )

    def transmit(self, bits):
        return self._channel.transmit(bits)

    def shutdown(self):
        self._channel.shutdown()


#: The Table 3 rows, top to bottom: the paper's eleven, then the three
#: PAPERS.md sibling frequency/power channels built on the modulation
#: layer (TurboCC, IChannels, clock modulation).
ALL_CHANNELS: tuple[type, ...] = (
    FlushReloadChannel,
    FlushFlushChannel,
    ReloadRefreshChannel,
    PrimeProbeChannel,
    PrimeAbortChannel,
    SppChannel,
    MeshContentionChannel,
    RingContentionChannel,
    IccCoresChannel,
    UncoreIdleChannel,
    UFVariationAdapter,
    TurboBoostChannel,
    CurrentThrottleChannel,
    DutyCycleChannel,
)

#: Row label -> implementing class, for name-keyed callers (the
#: service registry, trace capture, CLI filters).
CHANNELS_BY_NAME: dict[str, type] = {
    channel_cls.name: channel_cls for channel_cls in ALL_CHANNELS
}


@dataclass(frozen=True)
class ComparisonCell:
    """One (channel, scenario) evaluation."""

    channel: str
    scenario: str
    functional: bool
    error_rate: float | None
    note: str = ""

    @property
    def mark(self) -> str:
        return "yes" if self.functional else "no"


def evaluate_channel(channel_cls, scenario: Scenario, *, bits: int = 24,
                     seed: int = 0) -> ComparisonCell:
    """Run one channel in one scenario and grade it."""
    platform = scenario.platform()
    transform = getattr(channel_cls, "platform_transform", None)
    if transform is not None:
        platform = transform(platform)
    system = System(platform, security=scenario.security, seed=seed)
    placement = scenario.placement
    stress = []
    try:
        if scenario.stress_threads:
            stress = launch_stressor_threads(
                system,
                scenario.stress_threads,
                socket_id=0,
                avoid_cores=set(range(8)) | {placement.receiver_core},
            )
            system.run_ms(30)
        channel = channel_cls(
            system,
            sender_socket=placement.sender_socket,
            sender_core=placement.sender_core,
            receiver_socket=placement.receiver_socket,
            receiver_core=placement.receiver_core,
            sender_domain=placement.sender_domain,
            receiver_domain=placement.receiver_domain,
        )
    except (PrerequisiteError, MemoryError_, ChannelError) as exc:
        system.stop()
        return ComparisonCell(
            channel=channel_cls.name,
            scenario=scenario.key,
            functional=False,
            error_rate=None,
            note=f"cannot deploy: {exc}",
        )
    payload = random_bits(bits, seed,
                          f"{channel_cls.name}-{scenario.key}")
    try:
        outcome = channel.transmit(payload)
    except (PrerequisiteError, MemoryError_, ChannelError) as exc:
        channel.shutdown()
        system.stop()
        return ComparisonCell(
            channel=channel_cls.name,
            scenario=scenario.key,
            functional=False,
            error_rate=None,
            note=f"cannot operate: {exc}",
        )
    channel.shutdown()
    for thread in stress:
        system.terminate(thread)
    system.stop()
    error_rate = outcome.error_rate
    return ComparisonCell(
        channel=channel_cls.name,
        scenario=scenario.key,
        functional=error_rate < FUNCTIONAL_BER_THRESHOLD,
        error_rate=error_rate,
    )


def comparison_matrix(*, bits: int = 24, seed: int = 0,
                      channels: tuple[type, ...] = ALL_CHANNELS,
                      scenarios: tuple[Scenario, ...] = SCENARIOS,
                      workers: int | None = 1,
                      context: "ExperimentContext | None" = None,
                      backend: str | None = None,
                      ) -> list[ComparisonCell]:
    """The full Table 3: every channel in every scenario.

    Every (channel, scenario) cell builds its own seeded system, so the
    matrix is an independent trial grid: ``workers > 1`` evaluates cells
    in parallel processes and still returns them in row-major
    (channel, scenario) order, bit-identical to the serial run.

    Scenarios define their own platforms (that is what Table 3
    compares), so a ``context.platform`` override is rejected.  The
    matrix mixes ten non-UFS channels with security scenarios the
    vectorized fastpath does not model, so only the DES backend can run
    it: ``backend="auto"`` resolves to ``"des"`` and an explicit
    ``"batch"``/``"analytical"`` request is rejected rather than
    silently answered by the wrong simulator.
    """
    from ..core.context import ExperimentContext
    from ..errors import ConfigError
    from ..fastpath.backend import resolve_backend

    ctx = ExperimentContext.coalesce(
        context, seed=seed, workers=workers, backend=backend
    )
    if ctx.platform is not None:
        raise ConfigError(
            "comparison_matrix scenarios define their own platforms; "
            "a context platform override is not meaningful"
        )
    resolved = resolve_backend(ctx.backend, experiment="comparison_matrix")
    supported = ("des", "auto")
    if resolved != "des":
        raise ConfigError(
            f"comparison_matrix cannot run on backend {resolved!r} "
            f"(requested {ctx.backend!r}): the vectorized backends "
            "model only the UF-variation experiments, not the full "
            f"channel matrix — supported backends: {list(supported)}"
        )
    trials = [
        Trial(evaluate_channel, dict(channel_cls=channel_cls,
                                     scenario=scenario,
                                     bits=bits, seed=ctx.seed))
        for channel_cls in channels
        for scenario in scenarios
    ]
    return run_trials(trials, workers=ctx.workers)


#: The paper's Table 3, for verification: channel -> scenario -> works.
PAPER_TABLE3: dict[str, dict[str, bool]] = {
    "Flush+Reload": {
        "no_shared_mem": False, "no_clflush": False, "no_tsx": True,
        "random_llc": True, "fine_partition": False,
        "coarse_partition": False, "stress4": True,
    },
    "Flush+Flush": {
        "no_shared_mem": False, "no_clflush": False, "no_tsx": True,
        "random_llc": True, "fine_partition": False,
        "coarse_partition": False, "stress4": True,
    },
    "Reload+Refresh": {
        "no_shared_mem": False, "no_clflush": False, "no_tsx": True,
        "random_llc": False, "fine_partition": False,
        "coarse_partition": False, "stress4": True,
    },
    "Prime+Probe": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": False, "fine_partition": False,
        "coarse_partition": False, "stress4": True,
    },
    "Prime+Abort": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": False,
        "random_llc": False, "fine_partition": False,
        "coarse_partition": False, "stress4": True,
    },
    "SPP": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": False,
        "coarse_partition": False, "stress4": True,
    },
    "Mesh-contention": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": False,
        "coarse_partition": False, "stress4": True,
    },
    "Ring-contention": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": False,
        "coarse_partition": False, "stress4": True,
    },
    "IccCoresCovert": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": True,
        "coarse_partition": False, "stress4": True,
    },
    "Uncore-idle": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": True,
        "coarse_partition": True, "stress4": False,
    },
    "UF-variation": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": True,
        "coarse_partition": True, "stress4": True,
    },
}

#: Expected behaviour of the three modulation-layer channels — rows the
#: repo *adds* to Table 3, kept separate from :data:`PAPER_TABLE3` so
#: the paper's own ground truth stays untouched.  All three live in the
#: per-package core clock domain: no cache/memory prerequisites, immune
#: to LLC randomization and uncore partitioning, broken only by coarse
#: (per-socket) partitioning.  TurboCC survives stress4 because the bin
#: table still has a boundary above four extra active cores; IChannels
#: and clock modulation survive because stress-ng's cache loops draw no
#: regulator-scale current and never touch the duty MSR.
EXTENDED_TABLE3: dict[str, dict[str, bool]] = {
    "TurboCC": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": True,
        "coarse_partition": False, "stress4": True,
    },
    "IChannels": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": True,
        "coarse_partition": False, "stress4": True,
    },
    "ClockModCovert": {
        "no_shared_mem": True, "no_clflush": True, "no_tsx": True,
        "random_llc": True, "fine_partition": True,
        "coarse_partition": False, "stress4": True,
    },
}
