"""SPP — stochastic Prime+Probe on randomized caches (Verma et al. [56]).

Set-agnostic occupancy signalling.  The receiver cycles a working set
larger than its private L2, so a steady fraction of it lives in the
LLC; to send a "1" the sender floods the LLC with a cache-scale working
set of its own, statistically evicting the receiver's lines wherever
the (possibly secret) indexing put them.  The receiver re-walks its set
and thresholds the DRAM-miss count against a self-calibrated baseline.

Because the signal is aggregate occupancy, secret set indexing does not
defeat it (Table 3: survives "Random. LLC") — the flood's pressure is
uniform over the slice array either way.  Partitioning removes the
shared LLC capacity and kills it.

Scaling note: occupancy channels need working sets comparable to the
LLC (megabytes on the real part).  To keep per-access simulation
tractable this channel is evaluated on a geometry-scaled platform —
64-set L2 and LLC slices at the original associativities, indexing and
victim flow — which is equivalent to scaling the working sets up on
the full part.
"""

from __future__ import annotations

from dataclasses import replace

from ..units import us
from .base import BaselineChannel, Prerequisites


class SppChannel(BaselineChannel):
    """Occupancy walk -> (sender flood?) -> miss-count threshold."""

    name = "SPP"
    leakage_source = "LLC set conflict"

    #: Scaled geometries: 64 sets at original associativity.
    SCALED_L2_BYTES = 64 * 16 * 64
    SCALED_SLICE_BYTES = 64 * 11 * 64
    #: Receiver working set (lines): ~3x the scaled L2.
    WORKING_SET_LINES = 3000
    #: Sender flood (lines): most of the scaled LLC.
    FLOOD_LINES = 8000

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @classmethod
    def platform_transform(cls, config):
        sockets = tuple(
            replace(
                socket,
                l2_config=replace(socket.l2_config,
                                  size_bytes=cls.SCALED_L2_BYTES),
                llc_slice_config=replace(
                    socket.llc_slice_config,
                    size_bytes=cls.SCALED_SLICE_BYTES,
                ),
            )
            for socket in config.sockets
        )
        return replace(config, sockets=sockets)

    @property
    def bit_time_ns(self) -> int:
        return us(400)

    def setup(self) -> None:
        self._receiver_walk = tuple(
            self.receiver.allocate(self.WORKING_SET_LINES * 64)
            .addresses(64)
        )
        self._flood_walk = tuple(
            self.sender.allocate(self.FLOOD_LINES * 64).addresses(64)
        )
        # Warm both sets, then calibrate the miss baseline for each
        # symbol: quiet (b0) and flooded (b1).
        self.receiver.bulk_load(self._receiver_walk)
        self.receiver.bulk_load(self._receiver_walk)
        b0 = self.receiver.bulk_load(self._receiver_walk)
        self.sender.bulk_load(self._flood_walk)
        b1 = self.receiver.bulk_load(self._receiver_walk)
        self._threshold = (b0 + b1) / 2.0
        self._separation = b1 - b0

    def send_and_receive(self, bit: int) -> int:
        if bit:
            self.sender.bulk_load(self._flood_walk)
        else:
            self.system.run_for(us(60))
        misses = self.receiver.bulk_load(self._receiver_walk)
        # The walk itself re-establishes occupancy for the next bit.
        return 1 if misses > self._threshold else 0
