"""Uncore-idle: the package-C-state channel (Chen et al. [9]).

The sender modulates the platform's idle state by keeping one core busy
(bit 1) or letting everything sleep (bit 0).  The receiver measures the
wake-up latency of servicing a network packet — the paper's NIC method
(Section 2.3): the gap between packet arrival and the interrupt service
routine contains the serving core's C-state exit latency plus the
uncore PC-state exit latencies, so a deep-sleeping platform answers
hundreds of microseconds slower than an awake one.

The packet's service path crosses every package (DMA plus interrupt
delivery wake each sleeping uncore), which is what lets the channel
operate cross-processor and survive even coarse partitioning
(Table 3).  Its fatal weakness is noise: one busy core anywhere pins
PC0 and the channel disappears, which is exactly the stress-ng column.
"""

from __future__ import annotations

from ..cpu.activity import ActivityProfile
from ..io.nic import NetworkInterface
from ..units import ms, us
from .base import BaselineChannel, Prerequisites

#: Sender busy profile: plain compute keeps the core in C0.
_BUSY = ActivityProfile(active=True)


class UncoreIdleChannel(BaselineChannel):
    """Idle-state modulation vs. NIC wake-latency measurement."""

    name = "Uncore-idle"
    leakage_source = "Idle power control"

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @property
    def bit_time_ns(self) -> int:
        return ms(4)

    def setup(self) -> None:
        # The NIC's interrupts land on the receiver's core: measuring
        # T2 - T1 is exactly timing its own packet socket.
        self.nic = NetworkInterface(
            self.system,
            socket_id=self.receiver.socket_id,
            serving_core=self.receiver.core_id,
            rng=self.system.namer.rng("uncore-idle-nic"),
        )
        # Calibrate the decision threshold from both symbol states.
        low = self._observe_state(1)
        high = self._observe_state(0)
        self._threshold = (low + high) / 2.0

    def _observe_state(self, bit: int) -> float:
        self._drive(bit)
        self.system.run_for(self.bit_time_ns - us(5))
        value = float(self.nic.ping().wake_latency_ns)
        self._drive(0)
        self.system.run_for(us(5))
        return value

    def _drive(self, bit: int) -> None:
        if bit:
            self.sender.set_profile(_BUSY)
        else:
            self.sender.go_idle()

    def send_and_receive(self, bit: int) -> int:
        self._drive(bit)
        self.system.run_for(self.bit_time_ns - us(100))
        timing = self.nic.ping()
        # Busy platform -> shallow states -> short wake -> bit 1.
        return 1 if timing.wake_latency_ns < self._threshold else 0
