"""TurboCC (Gross et al., https://arxiv.org/pdf/2007.07046).

Turbo Boost publishes a table of maximum frequencies indexed by the
number of simultaneously active cores, and the package ceiling follows
that table as cores wake and park.  The sender wakes a group of helper
cores to drag the ceiling down one bin; the receiver times its own
arithmetic — clocked at the shared ceiling — and reads the bin back.

The shared resource is the *per-package* turbo ceiling, modelled by
:class:`~repro.power.modulation.TurboController`: no caches, no shared
memory, no interconnect traffic.  LLC randomization and fine-grained
uncore partitioning leave it intact; only coarse (per-socket)
partitioning separates the parties, because each package boosts
independently (mirroring the paper's cross-CPU limitation).
"""

from __future__ import annotations

from ..cpu.activity import ActivityProfile
from ..units import ms
from .base import BaselineChannel, Prerequisites

#: Helper cores the sender wakes to move the active-core count across
#: a turbo-bin boundary.  Six helpers cross a boundary both from the
#: quiet baseline (1-2 active -> 7-8 active) and under four stressor
#: threads (5-6 active -> 11-12 active) on the default bin table.
HELPER_CORES = 6

#: Plain-compute profile for the sender's helpers: active, core-private
#: work only — no LLC traffic (the uncore must not see extra demand,
#: the channel lives entirely in the core clock domain).
ACTIVE_COMPUTE_PROFILE = ActivityProfile(
    active=True, l2_rate_per_us=50.0, stall_ratio=0.05
)

#: Light profile the receiver's timing loop carries (it must count as
#: an active core — the loop is real work).
RECEIVER_LOOP_PROFILE = ActivityProfile(
    active=True, l2_rate_per_us=10.0, stall_ratio=0.02
)

#: Cycles of the receiver's fixed reference loop.  At the default bins
#: the per-loop duration separates cleanly: 10.8 us at 3.7 GHz vs
#: 12.1 us at 3.3 GHz vs 12.9 us at 3.1 GHz.
LOOP_CYCLES = 40_000.0
#: Relative timing noise of one loop (averaged over LOOPS_PER_BIT).
NOISE_SIGMA = 0.012
#: Reference loops averaged per symbol.
LOOPS_PER_BIT = 8
#: Settle time for the turbo controller to observe the new active-core
#: count (two evaluation periods of the default 1 ms).
SETTLE_NS = ms(2)
#: Recovery time after the helpers park again.
RECOVER_NS = ms(1)


class TurboBoostChannel(BaselineChannel):
    """Helper-core wakeups vs. a turbo-clocked timing loop."""

    name = "TurboCC"
    leakage_source = "Turbo Boost bins"

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @property
    def bit_time_ns(self) -> int:
        return ms(3)

    def setup(self) -> None:
        self._rng = self.system.namer.rng("turbocc-noise")
        #: Per-loop measurements ``(time_ns, duration_ns)`` — the raw
        #: stream the golden corpora snapshot.
        self.observations: list[tuple[int, float]] = []
        # The receiver reads its own package's ceiling; touching the
        # property instantiates the (lazy) controller before any timing.
        self._turbo = self.receiver.socket.modulation.turbo
        # The sender modulates its own package's active-core count.
        free = [
            core
            for core in self.sender.socket.cores
            if core.owner is None and core.core_id != self.receiver.core_id
        ]
        self._helpers = free[:HELPER_CORES]
        for core in self._helpers:
            core.claim(f"{self.name}-helper-{core.core_id}")
        self.receiver.set_profile(RECEIVER_LOOP_PROFILE)
        # Calibrate: observe both symbol states, threshold at midpoint.
        high = self._observe_state(1)
        low = self._observe_state(0)
        self._threshold = (low + high) / 2.0

    def _set_helpers(self, awake: bool) -> None:
        now = self.system.now
        for core in self._helpers:
            core.set_profile(
                now, ACTIVE_COMPUTE_PROFILE if awake else
                ActivityProfile()
            )

    def _timed_reference_loop(self) -> float:
        duration = LOOP_CYCLES * 1_000.0 / self._turbo.ceiling_mhz * (
            1.0 + float(self._rng.normal(0.0, NOISE_SIGMA))
        )
        self.system.engine.run_for(max(int(duration), 1))
        self.observations.append((self.system.now, duration))
        return duration

    def _observe_state(self, bit: int) -> float:
        self._set_helpers(bool(bit))
        self.system.run_for(SETTLE_NS)
        loops = [self._timed_reference_loop()
                 for _ in range(LOOPS_PER_BIT)]
        self._set_helpers(False)
        self.system.run_for(RECOVER_NS)
        return sum(loops) / len(loops)

    def send_and_receive(self, bit: int) -> int:
        mean = self._observe_state(bit)
        return 1 if mean > self._threshold else 0

    def shutdown(self) -> None:
        now = self.system.now
        for core in self._helpers:
            core.set_profile(now, ActivityProfile())
            core.release(now)
        super().shutdown()
