"""Raw receiver streams of the modulation channels, captured to traces.

The three modulation-layer channels (TurboCC, IChannels, clock
modulation) decode from one observable: the duration of the receiver's
timed reference loop.  This module snapshots that stream — every
``(time_ns, duration_ns)`` measurement of one transmission, calibration
included — as a :class:`~repro.sidechannel.tracer.TraceRecord`, the
same container the UFS attacker traces use, so the existing corpus
codec, golden comparator and :class:`~repro.trace.store.TraceStore`
all apply unchanged.

Two consumers:

* the golden corpora (``tests/golden/channel-*.uftc``) pin the streams
  bit-for-bit against simulator drift;
* :func:`capture_channel_trace` serves repeat captures from a
  :class:`~repro.trace.store.TraceStore`, which the differential suite
  uses to prove a warm (replayed) capture is bit-identical to a cold
  (simulated) one.
"""

from __future__ import annotations

import numpy as np

from ..core.evaluation import random_bits
from ..errors import ConfigError
from ..platform.system import System
from ..sidechannel.tracer import TraceRecord
from ..trace.store import TraceStore
from .comparison import CHANNELS_BY_NAME
from .scenarios import scenario_by_key

__all__ = [
    "OBSERVING_CHANNELS",
    "capture_channel_trace",
    "simulate_channel_trace",
]

#: Channels whose receivers expose the raw observation stream this
#: module captures (the modulation-layer family).
OBSERVING_CHANNELS: tuple[str, ...] = (
    "TurboCC", "IChannels", "ClockModCovert",
)


def simulate_channel_trace(name: str, *, bits: int = 12,
                           seed: int = 0) -> TraceRecord:
    """Run one transmission and return the receiver's raw stream.

    The channel runs in the Table 3 ``baseline`` scenario.  The record
    carries the loop timestamps (ms) in ``times_ms`` and the loop
    durations (ns) in ``freqs_mhz`` — the codec is unit-agnostic; the
    field name reflects its original UFS use.  ``label`` is the payload
    size, so a corpus of several captures stays self-describing.
    """
    if name not in OBSERVING_CHANNELS:
        raise ConfigError(
            f"channel {name!r} does not expose an observation stream; "
            f"capturable: {list(OBSERVING_CHANNELS)}"
        )
    channel_cls = CHANNELS_BY_NAME[name]
    scenario = scenario_by_key("baseline")
    placement = scenario.placement
    system = System(
        scenario.platform(), security=scenario.security, seed=seed
    )
    channel = channel_cls(
        system,
        sender_socket=placement.sender_socket,
        sender_core=placement.sender_core,
        receiver_socket=placement.receiver_socket,
        receiver_core=placement.receiver_core,
        sender_domain=placement.sender_domain,
        receiver_domain=placement.receiver_domain,
    )
    channel.transmit(random_bits(bits, seed, f"capture-{name}"))
    observations = list(channel.observations)
    channel.shutdown()
    system.stop()
    return TraceRecord(
        label=bits,
        times_ms=np.array(
            [time_ns / 1e6 for time_ns, _ in observations]
        ),
        freqs_mhz=np.array([duration for _, duration in observations]),
    )


def capture_channel_trace(name: str, *, bits: int = 12, seed: int = 0,
                          store: TraceStore | None = None,
                          ) -> tuple[dict, list[TraceRecord]]:
    """A channel's raw stream, served from ``store`` when cached.

    Returns ``(meta, records)`` exactly as :meth:`TraceStore.fetch`
    would; the first call under a given store simulates and populates
    the cache, later calls replay the blob — bit-identically, which the
    differential suite asserts.
    """
    scenario = scenario_by_key("baseline")
    meta = {"channel": name, "bits": bits, "seed": seed}
    key = TraceStore.key(
        f"channel/{name}",
        platform=scenario.platform(),
        params={"bits": bits},
        seed=seed,
    )
    if store is not None:
        cached = store.fetch(key)
        if cached is not None:
            return cached
    records = [simulate_channel_trace(name, bits=bits, seed=seed)]
    if store is not None:
        store.put(key, records, experiment=f"channel/{name}", meta=meta)
        fetched = store.fetch(key)
        if fetched is not None:
            return fetched
    return meta, records
