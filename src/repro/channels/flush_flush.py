"""Flush+Flush (Gruss et al., cited as [25]).

A stealthier variant of Flush+Reload: the receiver never reloads the
line — it times the ``clflush`` itself.  Flushing a *cached* line pays
the invalidate/write-back round trip; flushing an uncached line returns
quickly.  Same prerequisites and defense profile as Flush+Reload.
"""

from __future__ import annotations

from ..platform.actor import Actor
from ..units import us
from .base import BaselineChannel, Prerequisites


class FlushFlushChannel(BaselineChannel):
    """(sender reload?) -> timed flush."""

    name = "Flush+Flush"
    leakage_source = "Data reuse"

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites(shared_memory=True, clflush=True)

    @property
    def bit_time_ns(self) -> int:
        return us(5)

    def setup(self) -> None:
        segment = self.sender.share_segment(4096)
        sender_map = self.sender.map_segment(segment)
        receiver_map = self.receiver.map_segment(segment)
        self._sender_target = sender_map.virtual_base
        self._receiver_target = receiver_map.virtual_base
        # Start from a flushed state.
        self.receiver.clflush(self._receiver_target)
        self._threshold = (
            Actor.CLFLUSH_CACHED_CYCLES + Actor.CLFLUSH_UNCACHED_CYCLES
        ) / 2.0

    def send_and_receive(self, bit: int) -> int:
        if bit:
            self.sender.timed_load(self._sender_target)
        else:
            self.system.run_for(us(1))
        latency = self.receiver.timed_clflush(self._receiver_target)
        return 1 if latency > self._threshold else 0
