"""Prime+Abort (Disselkoen et al., cited as [14]).

Prime+Probe without a timer: the receiver primes the agreed LLC set
*inside a transactional region* (Intel TSX).  When the sender's
congruent accesses evict any line of the transaction's read set, the
transaction aborts — the abort signal itself is the bit.

Needs TSX (Table 3's "No TSX" column is its only extra prerequisite);
randomized LLC and partitioning break the underlying set conflict just
as for Prime+Probe.
"""

from __future__ import annotations

from ..units import us
from .base import BaselineChannel, Prerequisites


class PrimeAbortChannel(BaselineChannel):
    """Prime in a transaction -> (sender evict?) -> abort?"""

    name = "Prime+Abort"
    leakage_source = "LLC set conflict"

    SET_LINES = 27
    TARGET_SLICE = 0
    TARGET_SET = 96

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites(tsx=True)

    @property
    def bit_time_ns(self) -> int:
        return us(20)

    def setup(self) -> None:
        # Validate TSX availability up front (constructor-time
        # prerequisite, as in Table 3).
        self.receiver.begin_transaction([])
        self.receiver.end_transaction()
        self._receiver_lines = self.receiver.builder.build_llc_set_list(
            self.TARGET_SLICE, self.TARGET_SET, self.SET_LINES
        )
        self._sender_lines = self.sender.builder.build_llc_set_list(
            self.TARGET_SLICE, self.TARGET_SET, self.SET_LINES
        )

    def send_and_receive(self, bit: int) -> int:
        # Prime the set, then open the transaction over the primed lines.
        for _ in range(2):
            for virtual in self._receiver_lines.virtual_addresses:
                self.receiver.timed_load(virtual, advance_time=False)
        self.receiver.begin_transaction(
            list(self._receiver_lines.virtual_addresses)
        )
        self.system.run_for(us(2))
        if bit:
            for virtual in self._sender_lines.virtual_addresses:
                self.sender.timed_load(virtual, advance_time=False)
        self.system.run_for(us(2))
        aborted = self.receiver.end_transaction()
        self.system.run_for(self.bit_time_ns // 2)
        return 1 if aborted else 0
