"""The Table 3 evaluation scenarios.

Each scenario is a platform variation: a prerequisite withheld (shared
memory, clflush, TSX), a defense deployed (randomized LLC, fine
partitioning, coarse partitioning) or background noise
(``stress-ng --cache 4``).  The comparison harness runs every channel
in every scenario; a channel is functional when it still decodes with a
BER clearly below chance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..config import PlatformConfig, default_platform_config
from ..platform.system import SecurityConfig, System


@dataclass(frozen=True)
class Placement:
    """Where the two parties run in a scenario."""

    sender_socket: int = 0
    sender_core: int = 0
    receiver_socket: int = 0
    receiver_core: int = 8
    sender_domain: int = 0
    receiver_domain: int = 0


@dataclass(frozen=True)
class Scenario:
    """One column of Table 3."""

    key: str
    label: str
    shared_memory: bool = True
    clflush: bool = True
    tsx: bool = True
    security: SecurityConfig = field(default_factory=SecurityConfig)
    placement: Placement = field(default_factory=Placement)
    stress_threads: int = 0

    def platform(self) -> PlatformConfig:
        """The platform config this scenario runs on."""
        base = default_platform_config()
        return replace(
            base,
            shared_memory_available=self.shared_memory,
            clflush_available=self.clflush,
            tsx_available=self.tsx,
        )


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(key="baseline", label="Baseline"),
    Scenario(key="no_shared_mem", label="No shared mem.",
             shared_memory=False),
    Scenario(key="no_clflush", label="No clflush", clflush=False),
    Scenario(key="no_tsx", label="No TSX", tsx=False),
    Scenario(
        key="random_llc",
        label="Random. LLC",
        security=SecurityConfig(randomize_llc=True),
    ),
    Scenario(
        key="fine_partition",
        label="Fine partition",
        security=SecurityConfig(fine_partition=True, num_domains=2),
        placement=Placement(sender_domain=0, receiver_domain=1),
    ),
    Scenario(
        key="coarse_partition",
        label="Coarse partition",
        security=SecurityConfig(coarse_partition=True),
        placement=Placement(sender_socket=0, receiver_socket=1),
    ),
    Scenario(
        key="stress4",
        label="stress-ng --cache 4",
        stress_threads=4,
    ),
)

#: Beyond the paper's columns: every defense stacked at once.  The
#: paper claims UF-variation "remains functional even with one or more
#: uncore partitioning mechanisms in place"; this scenario takes "or
#: more" literally — randomized LLC + fine partitioning + coarse
#: (cross-socket, NUMA-strict) partitioning simultaneously.
ALL_DEFENSES_SCENARIO = Scenario(
    key="all_defenses",
    label="All defenses stacked",
    security=SecurityConfig(
        randomize_llc=True,
        fine_partition=True,
        num_domains=2,
        coarse_partition=True,
    ),
    placement=Placement(
        sender_socket=0,
        receiver_socket=1,
        sender_domain=0,
        receiver_domain=1,
    ),
)


def scenario_by_key(key: str) -> Scenario:
    """Look up one scenario by its key."""
    for scenario in SCENARIOS:
        if scenario.key == key:
            return scenario
    raise KeyError(f"no scenario {key!r}")


def build_scenario_system(scenario: Scenario, seed: int = 0) -> System:
    """Construct the platform for one scenario (stress not yet running)."""
    return System(scenario.platform(), security=scenario.security,
                  seed=seed)
