"""Reload+Refresh (Briongos et al., cited as [8]).

A data-reuse channel that manipulates the *replacement state* of the
target's cache set instead of flushing, so the victim keeps hitting.
Functionally the receiver must control the target line's residency via
congruent addresses — it combines page sharing with eviction-set
mechanics.  That combination is why its Table 3 profile differs from
Flush+Reload's: it still needs shared memory and (for initialisation)
``clflush``, but a randomized LLC breaks it, because the congruent
"refresh" set no longer maps to the target's (now secret) set.

Our implementation drives the same mechanics: per bit the receiver
cycles a congruent set to push the target out of the cache under known
indexing, lets the sender (maybe) touch the target, and times a reload.
"""

from __future__ import annotations

from ..cache.hierarchy import Level
from ..units import us
from .base import BaselineChannel, Prerequisites


class ReloadRefreshChannel(BaselineChannel):
    """Congruent-set refresh -> (sender reload?) -> timed reload."""

    name = "Reload+Refresh"
    leakage_source = "Data reuse"

    DRAM_THRESHOLD_CYCLES = 140.0
    #: Congruent lines cycled per refresh: enough to displace the target
    #: from the receiver's private caches and its LLC set
    #: (W_L2 + W_LLC = 27 on this platform).
    REFRESH_LINES = 27

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites(shared_memory=True, clflush=True)

    @property
    def bit_time_ns(self) -> int:
        return us(12)

    def setup(self) -> None:
        segment = self.sender.share_segment(4096)
        sender_map = self.sender.map_segment(segment)
        receiver_map = self.receiver.map_segment(segment)
        self._sender_target = sender_map.virtual_base
        self._receiver_target = receiver_map.virtual_base
        # Build the refresh set congruent with the target under the
        # *assumed* (standard) indexing.
        physical = self.receiver.space.translate(self._receiver_target)
        line = physical >> 6
        slice_id = self.receiver.slice_hash.slice_of(line)
        llc_sets = (
            self.receiver.socket.config.llc_slice_config.num_sets
        )
        self._refresh_set = self.receiver.builder.build_llc_set_list(
            slice_id, line % llc_sets, self.REFRESH_LINES
        )
        # Reload+Refresh initialises the target's replacement state with
        # an explicit flush (Briongos et al.) — the channel's clflush
        # prerequisite in Table 3.
        self.receiver.clflush(self._receiver_target)

    def _refresh(self) -> None:
        # Two passes: the first displaces the target from the private
        # caches into the (victim) LLC; the second floods the LLC set so
        # the target is evicted from there too.
        for _ in range(2):
            for virtual in self._refresh_set.virtual_addresses:
                self.receiver.timed_load(virtual, advance_time=False)

    def send_and_receive(self, bit: int) -> int:
        self._refresh()
        self.system.run_for(us(2))
        if bit:
            self.sender.timed_load(self._sender_target)
        else:
            self.system.run_for(us(1))
        record = self.receiver.timed_load(self._receiver_target)
        if record.level is Level.REMOTE_CACHE:
            return 1
        if record.level in (Level.L1, Level.L2):
            # Refresh failed to displace the target (randomized LLC):
            # the reload carries no information; decode degenerates.
            return 0
        return 1 if record.latency_cycles < self.DRAM_THRESHOLD_CYCLES \
            else 0
