"""Prime+Probe (Liu et al., cited as [42]).

No shared memory, no special instructions: sender and receiver agree on
an LLC set by convention.  The receiver *primes* the set with its own
congruent lines; the sender evicts them by walking its own congruent
lines to send a "1"; the receiver *probes* by re-timing its lines and
counting slow (DRAM-latency) accesses.

Broken by randomized LLC indexing (congruent lists stop colliding) and
by both partitioning schemes (no shared set to conflict in) — exactly
the Table 3 row.
"""

from __future__ import annotations

from ..cache.hierarchy import Level
from ..errors import ChannelError
from ..units import us
from .base import BaselineChannel, Prerequisites


class PrimeProbeChannel(BaselineChannel):
    """Prime -> (sender evict?) -> timed probe."""

    name = "Prime+Probe"
    leakage_source = "LLC set conflict"

    #: Congruent lines per party: enough to own the whole LLC set plus
    #: the private L2 set feeding it (W_L2 + W_LLC = 27).
    SET_LINES = 27
    #: Probe misses at or above this count decode as "1".
    MISS_THRESHOLD = 5
    #: The agreed-upon (slice, set) rendezvous.
    TARGET_SLICE = 0
    TARGET_SET = 64

    @classmethod
    def prerequisites(cls) -> Prerequisites:
        return Prerequisites()

    @property
    def bit_time_ns(self) -> int:
        return us(20)

    def setup(self) -> None:
        self._receiver_lines = self.receiver.builder.build_llc_set_list(
            self.TARGET_SLICE, self.TARGET_SET, self.SET_LINES
        )
        self._sender_lines = self.sender.builder.build_llc_set_list(
            self.TARGET_SLICE, self.TARGET_SET, self.SET_LINES
        )
        if set(self._receiver_lines.lines) & set(self._sender_lines.lines):
            raise ChannelError(
                "sender and receiver were assigned overlapping lines"
            )

    def _walk(self, actor, ev_set, rounds: int = 2) -> None:
        for _ in range(rounds):
            for virtual in ev_set.virtual_addresses:
                actor.timed_load(virtual, advance_time=False)

    def send_and_receive(self, bit: int) -> int:
        # Prime: the receiver owns the set.
        self._walk(self.receiver, self._receiver_lines)
        self.system.run_for(us(2))
        # Sender evicts (or not).
        if bit:
            self._walk(self.sender, self._sender_lines)
        self.system.run_for(us(2))
        # Probe: count accesses that fell out to DRAM.
        misses = 0
        for virtual in self._receiver_lines.virtual_addresses:
            record = self.receiver.timed_load(virtual, advance_time=False)
            if record.level is Level.DRAM:
                misses += 1
        self.system.run_for(self.bit_time_ns // 2)
        return 1 if misses >= self.MISS_THRESHOLD else 0
