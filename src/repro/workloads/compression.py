"""The file-compression victim of the Figure 11 side channel.

The victim runs a Python compression job whose total execution time is
proportional to the input file size.  While the job runs the victim's
core is active with moderate cache traffic; before and after, the core
is idle.  The attacker recovers the busy duration from the uncore
frequency trace (the frequency leaves ``freq_max`` while the victim is
active, because the victim's activity dilutes the attacker's stalled
fraction below 1/3 — Section 5's methodology) and hence the file size.
"""

from __future__ import annotations

import numpy as np

from ..cpu.activity import ActivityProfile
from ..units import ms
from .base import PhasedWorkload

#: Compression throughput: execution milliseconds per megabyte.
MS_PER_MB = 170.0
#: Relative jitter of the execution time between runs.
DURATION_JITTER = 0.015

#: Cache traffic of the compression job — enough to be clearly active,
#: light enough that it adds no uncore demand of its own.
COMPRESSION_PROFILE = ActivityProfile(
    active=True, llc_rate_per_us=12.0, mean_hops=1.0, stall_ratio=0.25
)


def compression_duration_ns(file_size_kb: float,
                            rng: np.random.Generator | None = None) -> int:
    """Execution time of compressing ``file_size_kb`` kilobytes."""
    base_ms = MS_PER_MB * file_size_kb / 1024.0
    jitter = 1.0
    if rng is not None:
        jitter = 1.0 + rng.normal(0.0, DURATION_JITTER)
    return ms(base_ms * max(jitter, 0.5))


class CompressionVictim(PhasedWorkload):
    """A victim that idles, compresses one file, then idles again."""

    def __init__(self, name: str, file_size_kb: float, *,
                 start_delay_ms: float = 100.0,
                 rng: np.random.Generator | None = None,
                 domain: int = 0) -> None:
        self.file_size_kb = file_size_kb
        self.work_ns = compression_duration_ns(file_size_kb, rng)
        phases = [
            (ms(start_delay_ms), ActivityProfile()),
            (self.work_ns, COMPRESSION_PROFILE),
        ]
        super().__init__(name, phases, repeat=False, domain=domain)
