"""A ``stress-ng --cache N`` equivalent (Table 2 / Table 3 noise).

Each stressor thread alternates between *heavy* phases — full-rate
eviction-list traffic at a random hop distance, the kind of load that
pins the uncore at or near the maximum frequency — and *quiet* phases
with only light cache churn.  Phase durations are exponentially
distributed, so with more threads the union of heavy phases covers an
increasing fraction of time.  That is exactly the noise mechanism the
paper describes: "the channel is affected by the phases where stress-ng
keeps the uncore frequency at freq_max" (Section 4.3.3).
"""

from __future__ import annotations

import numpy as np

from ..cpu.activity import ActivityProfile
from ..engine import Event
from .base import Workload
from .loops import TRAFFIC_LOOP_STALL_RATIO

#: Mean duration of a heavy phase (ns).
HEAVY_PHASE_MEAN_NS = 90_000_000
#: Mean duration of a quiet phase (ns).
QUIET_PHASE_MEAN_NS = 330_000_000
#: Quiet-phase LLC rate as a fraction of the full traffic-loop rate.
QUIET_RATE_FRACTION = 0.05
#: Heavy-phase LLC rate as a fraction of the full traffic-loop rate.
#: stress-ng's cache stressor mixes reads, writes and flushes, so its
#: sustained LLC pressure sits a little below a pure traffic loop's.
HEAVY_RATE_FRACTION = 0.9
#: Heavy phases walk buffers at nearby slices (the stressor does not
#: deliberately maximise mesh distance the way Listing 1 does).
HEAVY_MAX_HOPS = 2


class StressNgCache(Workload):
    """One cache-stressing thread with a seeded random phase schedule."""

    def __init__(self, name: str, rng: np.random.Generator, *,
                 rate_per_us: float = 160.0, domain: int = 0) -> None:
        super().__init__(name, domain)
        self.rng = rng
        self.rate_per_us = rate_per_us
        self._pending: Event | None = None
        self._heavy = False
        self.heavy_time_ns = 0
        self._heavy_entered_ns: int | None = None

    def on_start(self) -> None:
        # Start in a quiet phase with a random partial duration so
        # threads launched together immediately desynchronise.
        self._heavy = False
        self._apply_quiet()
        initial = self.rng.exponential(QUIET_PHASE_MEAN_NS) * self.rng.random()
        self._schedule_flip(int(initial) + 1)

    def on_stop(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._leave_heavy()

    # -- phase machinery -----------------------------------------------------

    def _schedule_flip(self, delay_ns: int) -> None:
        self._pending = self.system.engine.schedule(delay_ns, self._flip)

    def _flip(self) -> None:
        if not self.running:
            return
        self._heavy = not self._heavy
        if self._heavy:
            self._apply_heavy()
            duration = self.rng.exponential(HEAVY_PHASE_MEAN_NS)
        else:
            self._apply_quiet()
            duration = self.rng.exponential(QUIET_PHASE_MEAN_NS)
        self._schedule_flip(int(duration) + 1)

    def _random_slice(self, max_hops: int = HEAVY_MAX_HOPS) -> tuple[int, int]:
        """A random target slice within ``max_hops`` and its distance."""
        socket = self.system.socket(self.socket_id)
        hops = int(self.rng.integers(1, max_hops + 1))
        for distance in range(hops, 0, -1):
            candidates = socket.mesh.slices_at_distance(self.core_id,
                                                        distance)
            if candidates:
                pick = candidates[int(self.rng.integers(len(candidates)))]
                return pick, distance
        return self.core_id, 0

    def _apply_heavy(self) -> None:
        target_slice, hops = self._random_slice()
        profile = ActivityProfile(
            active=True,
            llc_rate_per_us=self.rate_per_us * HEAVY_RATE_FRACTION,
            mean_hops=float(hops),
            stall_ratio=TRAFFIC_LOOP_STALL_RATIO,
        )
        self.apply_profile(profile, target_slice)
        self._heavy_entered_ns = self.system.engine.now

    def _apply_quiet(self) -> None:
        self._leave_heavy()
        profile = ActivityProfile(
            active=True,
            llc_rate_per_us=self.rate_per_us * QUIET_RATE_FRACTION,
            mean_hops=0.0,
            stall_ratio=0.12,
        )
        self.apply_profile(profile, None)

    def _leave_heavy(self) -> None:
        if self._heavy_entered_ns is not None and self.system is not None:
            self.heavy_time_ns += self.system.engine.now - (
                self._heavy_entered_ns
            )
            self._heavy_entered_ns = None


def launch_stressor_threads(system, count: int, *, socket_id: int = 0,
                            avoid_cores: set[int] | None = None,
                            seed_prefix: str = "stress-ng",
                            domain: int = 0) -> list[StressNgCache]:
    """Start ``count`` stressor threads on free cores of a socket.

    Mirrors ``stress-ng --cache N`` running in the background of the
    Table 2 experiment: threads land on cores not used by the channel.
    """
    avoid = avoid_cores if avoid_cores is not None else set()
    socket = system.socket(socket_id)
    free = [
        core.core_id
        for core in socket.cores
        if core.owner is None and core.core_id not in avoid
    ]
    if len(free) < count:
        raise ValueError(
            f"not enough free cores for {count} stressor threads"
        )
    threads: list[StressNgCache] = []
    for index in range(count):
        rng = system.namer.rng(f"{seed_prefix}-{index}")
        thread = StressNgCache(f"{seed_prefix}-{index}", rng, domain=domain)
        system.launch(thread, socket_id, free[index])
        threads.append(thread)
    return threads
