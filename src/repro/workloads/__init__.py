"""Workloads: the loops, victims and stressors of the paper.

* :mod:`loops` — the traffic loop (Listing 1), stalling loop
  (Listing 2), nop loop and L2-resident pointer chase used throughout
  Section 3.
* :mod:`stressor` — a ``stress-ng --cache N`` equivalent (Table 2).
* :mod:`compression` — the file-compression victim (Figure 11).
* :mod:`browser` — synthetic website activity signatures and the
  browsing victim (Figure 12).
"""

from .base import PhasedWorkload, SteadyWorkload, Workload
from .loops import (
    L2PointerChaseLoop,
    NopLoop,
    StallingLoop,
    TrafficLoop,
    l2_pointer_chase_profile,
    nop_profile,
    stalling_profile,
    traffic_profile,
    STALLING_LOOP_RATE_PER_US,
    STALLING_LOOP_STALL_RATIO,
    TRAFFIC_LOOP_STALL_RATIO,
)
from .stressor import StressNgCache, launch_stressor_threads
from .compression import CompressionVictim
from .browser import BrowserVictim, WebsiteLibrary, login_variant

__all__ = [
    "BrowserVictim",
    "CompressionVictim",
    "L2PointerChaseLoop",
    "NopLoop",
    "PhasedWorkload",
    "STALLING_LOOP_RATE_PER_US",
    "STALLING_LOOP_STALL_RATIO",
    "StallingLoop",
    "SteadyWorkload",
    "StressNgCache",
    "TRAFFIC_LOOP_STALL_RATIO",
    "TrafficLoop",
    "WebsiteLibrary",
    "Workload",
    "l2_pointer_chase_profile",
    "launch_stressor_threads",
    "login_variant",
    "nop_profile",
    "stalling_profile",
    "traffic_profile",
]
