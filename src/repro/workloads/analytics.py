"""A scale-out analytics workload for the energy study (Section 6.1).

The paper quantifies the fixed-frequency countermeasure's cost on
graph-analytics applications (CloudSuite [19]): fixing the uncore at
``freq_max`` costs ~7 % extra energy relative to UFS.  The workload
model: alternating *compute-heavy scan* phases that drive the uncore
hard and *synchronisation/reduce* gaps with little uncore demand, with
a high duty cycle (analytics keeps caches busy most of the time — this
is why the overhead is only a few percent, not tens).
"""

from __future__ import annotations

import numpy as np

from ..cpu.activity import ActivityProfile
from ..engine import Event
from ..workloads.base import Workload
from .loops import TRAFFIC_LOOP_STALL_RATIO

#: Mean scan (uncore-heavy) phase length, ns.
SCAN_PHASE_MEAN_NS = 150_000_000
#: Mean reduce/sync (uncore-light) phase length, ns.  Graph analytics
#: is bulk-synchronous: every worker waits at the superstep barrier, so
#: the gaps are long enough for UFS to ramp well down.
SYNC_PHASE_MEAN_NS = 110_000_000


class AnalyticsWorkload(Workload):
    """One analytics worker thread with a seeded phase schedule."""

    def __init__(self, name: str, rng: np.random.Generator, *,
                 rate_per_us: float = 160.0, domain: int = 0) -> None:
        super().__init__(name, domain)
        self.rng = rng
        self.rate_per_us = rate_per_us
        self._pending: Event | None = None
        self._scanning = False

    def on_start(self) -> None:
        self._scanning = True
        self._apply_scan()
        self._schedule_flip(
            int(self.rng.exponential(SCAN_PHASE_MEAN_NS)) + 1
        )

    def on_stop(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_flip(self, delay_ns: int) -> None:
        self._pending = self.system.engine.schedule(delay_ns, self._flip)

    def _flip(self) -> None:
        if not self.running:
            return
        self._scanning = not self._scanning
        if self._scanning:
            self._apply_scan()
            duration = self.rng.exponential(SCAN_PHASE_MEAN_NS)
        else:
            self._apply_sync()
            duration = self.rng.exponential(SYNC_PHASE_MEAN_NS)
        self._schedule_flip(int(duration) + 1)

    def _apply_scan(self) -> None:
        hops = int(self.rng.integers(1, 4))
        profile = ActivityProfile(
            active=True,
            llc_rate_per_us=self.rate_per_us,
            mean_hops=float(hops),
            stall_ratio=TRAFFIC_LOOP_STALL_RATIO,
        )
        self.apply_profile(profile)

    def _apply_sync(self) -> None:
        profile = ActivityProfile(
            active=True,
            llc_rate_per_us=6.0,
            mean_hops=0.0,
            stall_ratio=0.10,
        )
        self.apply_profile(profile)
