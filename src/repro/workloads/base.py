"""Workload lifecycle and the profile/flow plumbing.

A workload is a thread pinned to one core.  In the macroscopic
simulation it does two things when its behaviour changes:

* set its core's :class:`~repro.cpu.activity.ActivityProfile`, which
  the UFS PMU integrates every evaluation period;
* keep a flow registered on the socket's contention tracker describing
  the mesh route its LLC traffic takes, which is what the
  interconnect-contention baseline channels observe.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import replace
from typing import TYPE_CHECKING

from ..cpu.activity import ActivityProfile, IDLE
from ..engine import Event
from ..errors import PlacementError

if TYPE_CHECKING:
    from ..platform.system import System


class Workload(ABC):
    """A nameable thread that can be pinned, started and stopped."""

    def __init__(self, name: str, domain: int = 0) -> None:
        self.name = name
        self.domain = domain
        self.system: "System | None" = None
        self.socket_id: int | None = None
        self.core_id: int | None = None
        self._flow_id: int | None = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def attach(self, system: "System", socket_id: int,
               core_id: int) -> None:
        """Pin to a core (claims it exclusively)."""
        if self.system is not None:
            raise PlacementError(f"{self.name} is already attached")
        system.socket(socket_id).core(core_id).claim(self.name)
        self.system = system
        self.socket_id = socket_id
        self.core_id = core_id
        self.on_attach()

    def detach(self) -> None:
        """Release the core."""
        if self.system is None:
            return
        self._clear_flow()
        self.system.socket(self.socket_id).core(self.core_id).release(
            self.system.engine.now
        )
        self.system = None
        self.socket_id = None
        self.core_id = None

    def start(self) -> None:
        """Begin running (must be attached)."""
        if self.system is None:
            raise PlacementError(f"{self.name} is not attached to a core")
        self._running = True
        self.on_start()

    def stop(self) -> None:
        """Stop running; the core goes idle."""
        if not self._running:
            return
        self._running = False
        self.on_stop()
        if self.system is not None:
            self.apply_profile(IDLE)

    @property
    def running(self) -> bool:
        return self._running

    # -- subclass hooks -------------------------------------------------------

    def on_attach(self) -> None:
        """Called after the core is claimed (optional override)."""

    def on_start(self) -> None:
        """Called when the workload starts (optional override)."""

    def on_stop(self) -> None:
        """Called when the workload stops (optional override)."""

    # -- profile/flow plumbing ---------------------------------------------------

    def apply_profile(self, profile: ActivityProfile,
                      target_slice: int | None = None) -> None:
        """Install ``profile`` on the pinned core and sync the NoC flow."""
        if self.system is None:
            raise PlacementError(f"{self.name} is not attached")
        socket = self.system.socket(self.socket_id)
        socket.core(self.core_id).set_profile(self.system.engine.now,
                                              profile)
        self._sync_flow(profile, target_slice)

    def _sync_flow(self, profile: ActivityProfile,
                   target_slice: int | None) -> None:
        socket = self.system.socket(self.socket_id)
        self._clear_flow()
        if profile.llc_rate_per_us <= 0 or target_slice is None:
            return
        route = socket.mesh.core_slice_route(self.core_id, target_slice)
        if not route:
            return
        self._flow_id = socket.contention.add_flow(
            route, profile.llc_rate_per_us, domain=self.domain
        )

    def _clear_flow(self) -> None:
        if self._flow_id is not None and self.system is not None:
            self.system.socket(self.socket_id).contention.remove_flow(
                self._flow_id
            )
            self._flow_id = None

    def __repr__(self) -> str:
        where = (
            f"socket={self.socket_id}, core={self.core_id}"
            if self.system is not None
            else "unattached"
        )
        return f"{type(self).__name__}({self.name!r}, {where})"


class SteadyWorkload(Workload):
    """A workload with one constant profile until stopped."""

    def __init__(self, name: str, profile: ActivityProfile,
                 target_hops: int | None = None, domain: int = 0) -> None:
        super().__init__(name, domain)
        self.profile = profile
        self.target_hops = target_hops
        self._target_slice: int | None = None

    def on_attach(self) -> None:
        if self.target_hops is None:
            return
        socket = self.system.socket(self.socket_id)
        mesh = socket.mesh
        candidates = mesh.slices_at_distance(self.core_id, self.target_hops)
        if candidates:
            self._target_slice = candidates[0]
            return
        # Some enabled tiles have no slice at the exact distance (e.g.
        # a corner core surrounded by fused-off tiles, Figure 2); fall
        # back to the nearest available distance and reflect the actual
        # hop count in the profile.
        best = min(
            range(mesh.num_cores),
            key=lambda s: (abs(mesh.hops(self.core_id, s)
                               - self.target_hops),
                           -mesh.hops(self.core_id, s)),
        )
        self._target_slice = best
        actual = mesh.hops(self.core_id, best)
        self.profile = replace(self.profile, mean_hops=float(actual))

    def on_start(self) -> None:
        self.apply_profile(self.profile, self._target_slice)


class PhasedWorkload(Workload):
    """A workload replaying a fixed schedule of profile phases.

    ``phases`` is a list of ``(duration_ns, profile)`` pairs (optionally
    with a target slice as a third element).  With ``repeat=True`` the
    schedule loops until stopped; otherwise the workload goes idle after
    the last phase.
    """

    def __init__(self, name: str, phases: list[tuple], *,
                 repeat: bool = False, domain: int = 0) -> None:
        super().__init__(name, domain)
        if not phases:
            raise PlacementError(f"{self.name}: needs at least one phase")
        self.phases = phases
        self.repeat = repeat
        self._index = 0
        self._pending: Event | None = None
        self.completed = False

    def on_start(self) -> None:
        self._index = 0
        self.completed = False
        self._enter_phase()

    def on_stop(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _enter_phase(self) -> None:
        if not self.running or self.system is None:
            return
        if self._index >= len(self.phases):
            if not self.repeat:
                self.completed = True
                self.apply_profile(IDLE)
                return
            self._index = 0
        entry = self.phases[self._index]
        duration_ns, profile = entry[0], entry[1]
        target_slice = entry[2] if len(entry) > 2 else None
        self.apply_profile(profile, target_slice)
        self._index += 1
        self._pending = self.system.engine.schedule(int(duration_ns),
                                                    self._enter_phase)
