"""The paper's microbenchmark loops as activity profiles.

Calibration (Section 3.2, measured with perf on the real machine):

* the **traffic loop** (Listing 1) streams eviction-list accesses with
  enough memory-level parallelism that the core stalls only ~30 % of
  cycles; one thread issues on the order of 160 LLC accesses/us — the
  demand unit the Figure 3 bands are expressed in;
* the **stalling loop** (Listing 2) pointer-chases through one eviction
  list, serialising every load: ~77 % of cycles stall and the issue
  rate collapses to roughly one access per LLC round trip (~30/us);
* an **L2-resident pointer chase** stalls only 14 % of cycles and never
  touches the uncore — it does *not* trigger UFS (Section 3.2);
* the **nop loop** keeps the core in C0 with no memory activity at all.
"""

from __future__ import annotations

from ..cpu.activity import ActivityProfile
from ..errors import ConfigError
from .base import SteadyWorkload

#: LLC accesses per microsecond from one stalling (pointer-chase) loop:
#: roughly one access per LLC round trip.
STALLING_LOOP_RATE_PER_US = 27.0
#: Measured stall ratio of the stalling loop (Section 3.2).
STALLING_LOOP_STALL_RATIO = 0.77
#: Measured stall ratio of the traffic loop (Section 3.2).
TRAFFIC_LOOP_STALL_RATIO = 0.30
#: Measured stall ratio of an L2-resident pointer chase (Section 3.2).
L2_CHASE_STALL_RATIO = 0.14
#: L2 accesses per microsecond of the L2-resident chase.
L2_CHASE_RATE_PER_US = 150.0


def traffic_profile(hops: int, rate_per_us: float = 160.0,
                    scale: float = 1.0) -> ActivityProfile:
    """Listing 1's traffic loop targeting a slice ``hops`` away."""
    if hops < 0:
        raise ConfigError("hop distance must be non-negative")
    return ActivityProfile(
        active=True,
        llc_rate_per_us=rate_per_us * scale,
        mean_hops=float(hops),
        stall_ratio=TRAFFIC_LOOP_STALL_RATIO,
    )


def stalling_profile(hops: int = 0) -> ActivityProfile:
    """Listing 2's pointer-chasing loop (stalls the core)."""
    if hops < 0:
        raise ConfigError("hop distance must be non-negative")
    return ActivityProfile(
        active=True,
        llc_rate_per_us=STALLING_LOOP_RATE_PER_US,
        mean_hops=float(hops),
        stall_ratio=STALLING_LOOP_STALL_RATIO,
    )


def nop_profile() -> ActivityProfile:
    """A busy-spin with no memory activity (keeps the core in C0)."""
    return ActivityProfile(active=True)


def l2_pointer_chase_profile() -> ActivityProfile:
    """Pointer chasing that stays within the L2 (no uncore activity)."""
    return ActivityProfile(
        active=True,
        l2_rate_per_us=L2_CHASE_RATE_PER_US,
        stall_ratio=L2_CHASE_STALL_RATIO,
    )


class TrafficLoop(SteadyWorkload):
    """A thread running the traffic loop against one LLC slice."""

    def __init__(self, name: str, hops: int, *,
                 rate_per_us: float = 160.0, domain: int = 0) -> None:
        super().__init__(
            name,
            traffic_profile(hops, rate_per_us),
            target_hops=hops,
            domain=domain,
        )
        self.hops = hops


class StallingLoop(SteadyWorkload):
    """A thread running the pointer-chasing (stalling) loop."""

    def __init__(self, name: str, hops: int = 0, domain: int = 0) -> None:
        super().__init__(
            name, stalling_profile(hops), target_hops=hops, domain=domain
        )
        self.hops = hops


class NopLoop(SteadyWorkload):
    """A busy but memory-silent thread."""

    def __init__(self, name: str, domain: int = 0) -> None:
        super().__init__(name, nop_profile(), domain=domain)


class L2PointerChaseLoop(SteadyWorkload):
    """Pointer chasing confined to the private L2."""

    def __init__(self, name: str, domain: int = 0) -> None:
        super().__init__(name, l2_pointer_chase_profile(), domain=domain)
