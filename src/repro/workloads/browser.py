"""Synthetic website activity and the browsing victim (Figure 12).

The paper fingerprints 100 real websites from uncore frequency traces.
We cannot load real pages, so each site gets a deterministic *activity
signature*: the time series of CPU-busy bursts a browser produces while
fetching, parsing and rendering that page.  Signatures are generated
from a per-site seeded RNG, so the same library is reproducible across
training and attack phases, while per-visit jitter (timing noise,
network variance) makes every visit a distinct sample — the learning
problem has the same shape as the paper's.

Signature structure, patterned after page-load waterfalls:

* an initial navigation burst (HTML fetch + parse);
* a per-site number of resource bursts with per-site duration and gap
  distributions (scripts, images, style recalculation);
* a final long-tail of idle punctuated by script timers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cpu.activity import ActivityProfile
from ..rng import child_rng
from ..units import ms
from .base import PhasedWorkload

#: Busy-phase cache traffic of the rendering browser.
_BUSY_RATE_PER_US = 12.0
_BUSY_STALL = 0.25


@dataclass(frozen=True)
class Burst:
    """One busy interval of a page load."""

    start_ms: float
    duration_ms: float
    intensity: float  # 0..1, scales cache traffic


@dataclass(frozen=True)
class WebsiteSignature:
    """A site's characteristic activity pattern."""

    site_id: int
    bursts: tuple[Burst, ...]
    total_ms: float


class WebsiteLibrary:
    """Deterministic signatures for ``num_sites`` synthetic websites."""

    def __init__(self, num_sites: int = 100, *, seed: int = 0,
                 trace_ms: float = 5_000.0) -> None:
        if num_sites <= 0:
            raise ValueError("need at least one site")
        self.num_sites = num_sites
        self.seed = seed
        self.trace_ms = trace_ms
        self._cache: dict[int, WebsiteSignature] = {}

    def signature(self, site_id: int) -> WebsiteSignature:
        """The (cached) signature of one site."""
        if not 0 <= site_id < self.num_sites:
            raise ValueError(f"no such site {site_id}")
        if site_id not in self._cache:
            self._cache[site_id] = self._generate(site_id)
        return self._cache[site_id]

    def _generate(self, site_id: int) -> WebsiteSignature:
        rng = child_rng(self.seed, f"website-{site_id}")
        bursts: list[Burst] = []
        # Navigation burst: every page starts busy.
        nav_ms = float(rng.uniform(120.0, 600.0))
        bursts.append(Burst(0.0, nav_ms, float(rng.uniform(0.7, 1.0))))
        cursor = nav_ms + float(rng.uniform(30.0, 250.0))
        # Per-site distributions for the resource-loading phase.
        n_bursts = int(rng.integers(4, 18))
        burst_scale = float(rng.uniform(40.0, 400.0))
        gap_scale = float(rng.uniform(30.0, 350.0))
        for _ in range(n_bursts):
            duration = float(rng.exponential(burst_scale)) + 20.0
            intensity = float(rng.uniform(0.4, 1.0))
            if cursor + duration > self.trace_ms:
                break
            bursts.append(Burst(cursor, duration, intensity))
            cursor += duration + float(rng.exponential(gap_scale)) + 15.0
        # Long tail: periodic script timers on some sites.
        if rng.random() < 0.5 and cursor < self.trace_ms - 400.0:
            period = float(rng.uniform(250.0, 900.0))
            tick_ms = float(rng.uniform(20.0, 90.0))
            while cursor + tick_ms < self.trace_ms:
                bursts.append(Burst(cursor, tick_ms, 0.5))
                cursor += period
        return WebsiteSignature(site_id, tuple(bursts), self.trace_ms)


def _busy_profile(intensity: float) -> ActivityProfile:
    return ActivityProfile(
        active=True,
        llc_rate_per_us=_BUSY_RATE_PER_US * intensity,
        mean_hops=1.0,
        stall_ratio=_BUSY_STALL,
    )


def login_variant(signature: WebsiteSignature,
                  success: bool) -> WebsiteSignature:
    """The site's post-login activity, by outcome (Figure 12's hotcrp
    panel: the attacker "is able to differentiate between successful
    and unsuccessful login attempts").

    A successful login triggers the full dashboard render — a long
    burst train after the form submit; a failed one bounces straight
    back to the (cached) login page with a single short error-render
    blip.
    """
    submit_ms = signature.bursts[-1].start_ms + (
        signature.bursts[-1].duration_ms
    )
    cursor = submit_ms + 180.0  # server round trip
    extra: list[Burst] = []
    if success:
        for duration, gap in ((320.0, 60.0), (180.0, 90.0),
                              (240.0, 70.0), (140.0, 0.0)):
            extra.append(Burst(cursor, duration, 0.9))
            cursor += duration + gap
    else:
        extra.append(Burst(cursor, 70.0, 0.6))
        cursor += 70.0
    total = max(signature.total_ms, cursor + 100.0)
    return WebsiteSignature(
        site_id=signature.site_id,
        bursts=signature.bursts + tuple(extra),
        total_ms=total,
    )


class BrowserVictim(PhasedWorkload):
    """A victim visiting one website, with per-visit jitter.

    ``visit_rng`` perturbs burst timing and length (±8 % durations,
    small start shifts) — different visits to the same site produce
    similar but not identical traces.
    """

    def __init__(self, name: str, signature: WebsiteSignature,
                 visit_rng: np.random.Generator, *,
                 domain: int = 0) -> None:
        self.signature = signature
        phases = self._phases_from(signature, visit_rng)
        super().__init__(name, phases, repeat=False, domain=domain)

    @staticmethod
    def _phases_from(signature: WebsiteSignature,
                     rng: np.random.Generator) -> list[tuple]:
        idle = ActivityProfile()
        phases: list[tuple] = []
        cursor = 0.0
        for burst in signature.bursts:
            start = max(
                burst.start_ms + float(rng.normal(0.0, 12.0)), cursor
            )
            duration = burst.duration_ms * float(
                1.0 + rng.normal(0.0, 0.08)
            )
            duration = max(duration, 5.0)
            if start > cursor:
                phases.append((ms(start - cursor), idle))
            intensity = min(
                max(burst.intensity + float(rng.normal(0.0, 0.05)), 0.1),
                1.0,
            )
            phases.append((ms(duration), _busy_profile(intensity)))
            cursor = start + duration
        if cursor < signature.total_ms:
            phases.append((ms(signature.total_ms - cursor), idle))
        return phases
