"""Result export: CSV and JSON serialisation of experiment artefacts.

The benchmark harness prints tables; downstream consumers (plotting
scripts, regression dashboards) want machine-readable forms.  This
module serialises the common artefacts — frequency traces, capacity
sweeps, comparison matrices — without pulling in any dependency beyond
the standard library.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, is_dataclass
from typing import Iterable


def trace_to_csv(times_ms, freqs_mhz) -> str:
    """A two-column frequency trace (the figures' raw series)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_ms", "freq_mhz"])
    for time, freq in zip(times_ms, freqs_mhz):
        writer.writerow([f"{float(time):.3f}", int(freq)])
    return buffer.getvalue()


def corpus_to_csv(records) -> str:
    """A long-form ``label,time_ms,freq_mhz`` export of a trace corpus.

    Accepts any iterable of :class:`~repro.sidechannel.tracer.
    TraceRecord` — including a lazy :class:`~repro.trace.reader.
    TraceReader` — so a stored corpus can stream straight to a plotting
    script without materialising.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["label", "time_ms", "freq_mhz"])
    for record in records:
        for time, freq in zip(record.times_ms, record.freqs_mhz):
            writer.writerow(
                [record.label, f"{float(time):.3f}", f"{float(freq):g}"]
            )
    return buffer.getvalue()


def rows_to_csv(headers: list[str], rows: Iterable[Iterable]) -> str:
    """Generic tabular export matching the printed benchmark tables."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def _jsonable(value):
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "ndim"):  # numpy arrays and scalars
        return value.tolist() if value.ndim else value.item()
    return value


def results_to_json(results, *, indent: int = 2) -> str:
    """Serialise dataclass results (CapacityPoint lists, Table 3 cells,
    fingerprint results, ...) to JSON."""
    return json.dumps(_jsonable(results), indent=indent)


def capacity_sweep_to_csv(points) -> str:
    """The Figure 10 series in CSV form."""
    return rows_to_csv(
        ["interval_ms", "raw_rate_bps", "error_rate", "capacity_bps"],
        (
            [p.interval_ms, p.raw_rate_bps, p.error_rate,
             p.capacity_bps]
            for p in points
        ),
    )


def manifest_to_json(manifest, *, indent: int = 2) -> str:
    """Serialise a :class:`~repro.telemetry.RunManifest` to JSON.

    The manifest is a frozen dataclass, so this is ``results_to_json``
    under a name that documents the artefact.
    """
    return results_to_json(manifest, indent=indent)


def append_jsonl(path, record) -> None:
    """Append one record as a JSON line to ``path`` (created if absent).

    JSONL is the manifest log format: one run per line, so repeated
    experiment invocations accumulate an audit trail instead of
    clobbering each other.
    """
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(_jsonable(record)))
        handle.write("\n")


def write_manifest(path, manifest) -> None:
    """Append one run manifest to the JSONL log at ``path``."""
    append_jsonl(path, manifest)


def comparison_to_csv(cells) -> str:
    """The Table 3 cells in CSV form."""
    return rows_to_csv(
        ["channel", "scenario", "functional", "error_rate", "note"],
        (
            [c.channel, c.scenario, c.functional,
             "" if c.error_rate is None else c.error_rate, c.note]
            for c in cells
        ),
    )
