"""Information-theoretic channel metrics (Section 4.3.2).

The paper quantifies throughput as *channel capacity*: the raw
transmission rate multiplied by ``1 - H(e)`` where ``e`` is the bit
error rate and ``H`` the binary entropy function — the Shannon capacity
of a binary symmetric channel at that error rate.
"""

from __future__ import annotations

import math


def binary_entropy(p: float) -> float:
    """``H(p)`` in bits; defined as 0 at the endpoints."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability {p} outside [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def channel_capacity_bps(raw_rate_bps: float, error_rate: float) -> float:
    """Capacity of a binary symmetric channel at a given raw rate.

    Errors beyond 0.5 are folded back (an adversary would invert the
    decoding), matching the standard BSC treatment.
    """
    if raw_rate_bps < 0:
        raise ValueError("raw rate must be non-negative")
    folded = min(error_rate, 1.0 - error_rate)
    return raw_rate_bps * (1.0 - binary_entropy(folded))
