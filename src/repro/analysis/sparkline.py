"""Terminal sparklines for frequency traces.

The paper's figures are frequency-versus-time plots; in a terminal the
closest faithful rendering is a block-character sparkline.  Used by the
examples and available for quick interactive inspection::

    >>> from repro.analysis.sparkline import sparkline
    >>> sparkline([1500, 1600, 1700, 2400, 2400, 1500])
    '▁▂▃█▇▁'
"""

from __future__ import annotations

import numpy as np

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, *, lo: float | None = None,
              hi: float | None = None) -> str:
    """Render a numeric series as one line of block characters.

    ``lo``/``hi`` pin the scale (pass the platform's frequency window
    to make several traces comparable); they default to the series'
    own extent.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return ""
    low = float(data.min()) if lo is None else float(lo)
    high = float(data.max()) if hi is None else float(hi)
    if high <= low:
        return _BLOCKS[0] * data.size
    scaled = (data - low) / (high - low)
    indices = np.clip(
        (scaled * (len(_BLOCKS) - 1)).round().astype(int),
        0,
        len(_BLOCKS) - 1,
    )
    return "".join(_BLOCKS[i] for i in indices)


def frequency_sparkline(freqs_mhz, *, min_mhz: int = 1200,
                        max_mhz: int = 2400,
                        max_width: int = 100) -> str:
    """A sparkline of a frequency trace on the platform's UFS scale.

    Long traces are average-pooled down to ``max_width`` columns.
    """
    data = np.asarray(list(freqs_mhz), dtype=np.float64)
    if data.size > max_width:
        edges = np.linspace(0, data.size, max_width + 1).astype(int)
        data = np.array([
            data[edges[i]:max(edges[i + 1], edges[i] + 1)].mean()
            for i in range(max_width)
        ])
    return sparkline(data, lo=min_mhz, hi=max_mhz)


def labelled_trace(label: str, freqs_mhz, **kwargs) -> str:
    """``label  <sparkline>  [min-max GHz]`` for example output."""
    data = np.asarray(list(freqs_mhz), dtype=np.float64)
    if data.size == 0:
        return f"{label}  (empty trace)"
    return (
        f"{label}  {frequency_sparkline(data, **kwargs)}  "
        f"[{data.min() / 1000:.1f}-{data.max() / 1000:.1f} GHz]"
    )
