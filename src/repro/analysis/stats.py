"""Statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def bit_error_rate(sent: list[int], received: list[int]) -> float:
    """Fraction of mismatching bits between two equal-length streams."""
    if len(sent) != len(received):
        raise ValueError(
            f"length mismatch: {len(sent)} sent, {len(received)} received"
        )
    if not sent:
        return 0.0
    errors = sum(1 for a, b in zip(sent, received) if a != b)
    return errors / len(sent)


def median_mhz(freqs) -> float:
    """Median of a frequency trace (the Figure 3 cell statistic)."""
    return float(np.median(np.asarray(freqs, dtype=np.float64)))


@dataclass(frozen=True)
class QuantileSummary:
    """The Figure 8 box-plot statistics for a latency sample."""

    mean: float
    median: float
    q25: float
    q75: float
    p1: float
    p99: float


def quantile_summary(samples) -> QuantileSummary:
    """Mean/median/IQR/1-99 percentile summary of a sample."""
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("empty sample")
    q = np.percentile(data, [1, 25, 50, 75, 99])
    return QuantileSummary(
        mean=float(data.mean()),
        median=float(q[2]),
        q25=float(q[1]),
        q75=float(q[3]),
        p1=float(q[0]),
        p99=float(q[4]),
    )


def confusion_matrix(true_labels, predicted_labels,
                     num_classes: int) -> np.ndarray:
    """``num_classes x num_classes`` count matrix (rows = truth)."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for truth, predicted in zip(true_labels, predicted_labels,
                                strict=True):
        matrix[truth, predicted] += 1
    return matrix


def top_k_accuracy(scores: np.ndarray, labels, k: int) -> float:
    """Fraction of rows whose true label is among the top-k scores.

    ``scores`` is ``(n_samples, n_classes)``; the paper reports top-1
    and top-5 for website fingerprinting (Section 5).
    """
    labels = np.asarray(labels)
    if scores.ndim != 2 or len(labels) != scores.shape[0]:
        raise ValueError("scores/labels shape mismatch")
    top_k = np.argsort(scores, axis=1)[:, -k:]
    hits = sum(
        1 for i, label in enumerate(labels) if label in top_k[i]
    )
    return hits / len(labels)
