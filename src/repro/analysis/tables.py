"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables and
figures report; this module keeps the formatting in one place.
"""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list],
                 *, title: str | None = None) -> str:
    """Render an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
