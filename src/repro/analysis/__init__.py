"""Analysis utilities: information theory, trace stats, table rendering,
machine-readable export."""

from .entropy import binary_entropy, channel_capacity_bps
from .export import (
    append_jsonl,
    capacity_sweep_to_csv,
    comparison_to_csv,
    corpus_to_csv,
    manifest_to_json,
    results_to_json,
    rows_to_csv,
    trace_to_csv,
    write_manifest,
)
from .stats import (
    bit_error_rate,
    confusion_matrix,
    median_mhz,
    quantile_summary,
    top_k_accuracy,
)
from .sparkline import frequency_sparkline, labelled_trace, sparkline
from .tables import format_table

__all__ = [
    "append_jsonl",
    "binary_entropy",
    "bit_error_rate",
    "capacity_sweep_to_csv",
    "channel_capacity_bps",
    "comparison_to_csv",
    "corpus_to_csv",
    "confusion_matrix",
    "format_table",
    "frequency_sparkline",
    "labelled_trace",
    "manifest_to_json",
    "median_mhz",
    "quantile_summary",
    "results_to_json",
    "rows_to_csv",
    "sparkline",
    "top_k_accuracy",
    "trace_to_csv",
    "write_manifest",
]
