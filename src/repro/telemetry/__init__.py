"""Observability for the simulated platform.

A zero-dependency metrics layer threaded through the hot subsystems:

* :mod:`repro.telemetry.registry` — counters, gauges, fixed-edge
  histograms and wall-clock spans with deterministic snapshot/merge;
* :mod:`repro.telemetry.context` — the ambient "active registry" that
  makes telemetry opt-in (no registry active, no collection);
* :mod:`repro.telemetry.collect` — harvest functions that fold a
  finished system/channel's counters into the active registry;
* :mod:`repro.telemetry.manifest` — the per-run JSON manifest the CLI
  emits via ``--telemetry PATH`` / ``--json``.

Typical use::

    from repro.telemetry import MetricsRegistry, using
    from repro.core.evaluation import capacity_sweep

    registry = MetricsRegistry()
    with using(registry):
        sweep = capacity_sweep(bits=40)
    print(registry.snapshot()["counters"]["engine.events_fired"])

Telemetry is strictly observational: results are bit-identical with a
registry active or not, for any worker count.
"""

from .collect import (
    LATENCY_EDGES,
    harvest_channel,
    harvest_engine,
    harvest_socket,
    harvest_system,
)
from .context import activate, active_registry, deactivate, using
from .manifest import (
    RunManifest,
    build_manifest,
    config_digest,
    registry_digest,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_EDGES",
    "MetricsRegistry",
    "RunManifest",
    "activate",
    "active_registry",
    "build_manifest",
    "config_digest",
    "deactivate",
    "harvest_channel",
    "harvest_engine",
    "harvest_socket",
    "harvest_system",
    "registry_digest",
    "using",
]
