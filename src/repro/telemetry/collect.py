"""Harvesting: fold a finished run's counters into a registry.

Instrumented layers keep cheap always-on integer counters; nothing in
the hot paths touches the registry.  At teardown (``System.stop()``,
``UFVariationChannel.shutdown()``) these functions read the counters
and fold them into the ambient registry under stable dotted names:

=========================  ==================================================
``engine.*``               events scheduled/fired/cancelled, compactions,
                           simulated nanoseconds
``ufs.*``                  PMU evaluations, frequency steps, stall/turbo
                           pins, decrease vetoes, frequency histogram
``cache.*``                loads by service level, clflushes
``noc.*``                  flows, rate updates, contention/hop queries
``channel.*``              transmissions, bits, errors, sync waits,
                           retransmissions, latency histogram
=========================  ==================================================

Harvesting is read-only — it never mutates the platform — so results
stay bit-identical with telemetry on or off.
"""

from __future__ import annotations

from .registry import MetricsRegistry

__all__ = [
    "LATENCY_EDGES",
    "harvest_channel",
    "harvest_engine",
    "harvest_socket",
    "harvest_system",
]

#: Fixed bucket edges (TSC cycles) for the receiver's LLC latency
#: distribution — spanning the Figure 8 range of ~50-100 cycles.
LATENCY_EDGES: tuple[float, ...] = (
    45.0, 55.0, 65.0, 75.0, 85.0, 95.0, 110.0
)


def harvest_engine(engine, registry: MetricsRegistry) -> None:
    """Fold one event engine's lifetime counters into ``registry``."""
    registry.inc("engine.events_scheduled", engine.events_scheduled)
    registry.inc("engine.events_fired", engine.events_fired)
    registry.inc("engine.events_cancelled", engine.events_cancelled)
    registry.inc("engine.compactions", engine.compactions)
    registry.inc("engine.simulated_ns", engine.now)


def harvest_socket(socket, registry: MetricsRegistry) -> None:
    """Fold one socket's PMU, cache and interconnect counters."""
    pmu = socket.pmu
    registry.inc("ufs.evaluations", pmu.evaluations)
    registry.inc("ufs.freq_steps", pmu.timeline.change_count)
    registry.inc("ufs.turbo_pins", pmu.turbo_pins)
    registry.inc("ufs.stall_pins", pmu.stall_pins)
    registry.inc("ufs.decrease_vetoes", pmu.decrease_vetoes)
    # One observation per piecewise-constant segment the frequency
    # actually held — edges come from the configured operating points,
    # so every socket of a platform shares one bucket layout.
    hist = registry.histogram(
        "ufs.freq_mhz",
        tuple(float(f) for f in pmu.config.frequency_points_mhz),
    )
    for _start, _end, freq_mhz in pmu.timeline.segments(
        0, socket.engine.now
    ):
        hist.observe(float(freq_mhz))

    stats = socket.hierarchy.stats
    registry.inc("cache.loads", stats.loads)
    registry.inc("cache.l1_hits", stats.l1_hits)
    registry.inc("cache.l2_hits", stats.l2_hits)
    registry.inc("cache.llc_hits", stats.llc_hits)
    registry.inc("cache.remote_hits", stats.remote_hits)
    registry.inc("cache.dram_fills", stats.dram_fills)
    registry.inc("cache.clflushes", stats.clflushes)

    contention = socket.contention
    registry.inc("noc.flows_registered", contention.flows_registered)
    registry.inc("noc.rate_updates", contention.rate_updates)
    registry.inc("noc.contention_queries",
                 contention.contention_queries)
    mesh = socket.mesh
    registry.inc("noc.hop_queries", mesh.hop_queries)
    registry.inc("noc.hops_traversed", mesh.hops_traversed)
    registry.inc("noc.route_queries", mesh.route_queries)


def harvest_system(system, registry: MetricsRegistry) -> None:
    """Fold a whole platform (engine + every socket) into ``registry``."""
    harvest_engine(system.engine, registry)
    for socket in system.sockets:
        harvest_socket(socket, registry)


def harvest_channel(channel, registry: MetricsRegistry) -> None:
    """Fold one UF-variation channel's endpoint counters."""
    registry.inc("channel.transmissions", channel.transmissions)
    registry.inc("channel.bits_sent", channel.bits_sent)
    registry.inc("channel.bit_errors", channel.bit_errors)
    registry.inc("channel.sync_waits", channel.sync_waits)
    registry.inc("channel.retransmissions", channel.retransmissions)
    hist = registry.histogram("channel.latency_cycles", LATENCY_EDGES)
    for observation in channel.receiver.observations:
        hist.observe(observation.t1_cycles)
        hist.observe(observation.t2_cycles)
