"""Run manifests: one machine-readable record per experiment run.

A manifest answers "what ran, with what configuration, and what did it
cost": experiment name, seed, worker count, a digest of the platform
configuration, wall time, total simulated time and the full metric
snapshot.  The CLI writes one JSONL record per run via
:func:`repro.analysis.export.write_manifest` (``--telemetry PATH``) and
prints the same record in ``--json`` mode.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from .registry import MetricsRegistry

__all__ = [
    "RunManifest",
    "build_manifest",
    "config_digest",
    "registry_digest",
]


def config_digest(config, *, backend: str | None = None) -> str | None:
    """A short stable digest of a (frozen, repr-stable) configuration.

    Frozen dataclasses repr deterministically, so two runs share a
    digest exactly when they share a platform configuration.

    ``backend`` folds the simulation backend into the digest so results
    produced by different simulators never share a content address (an
    ``"analytical"`` estimate must not be resumed as a DES
    measurement).  ``None`` and ``"des"`` are the *same* identity — the
    reference simulator — so a digest computed without the keyword is
    byte-for-byte what it always was and pre-backend checkpoints and
    trace corpora stay valid.
    """
    if backend in (None, "des"):
        if config is None:
            return None
        material = repr(config)
    else:
        material = f"{backend}:{repr(config) if config is not None else ''}"
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def registry_digest(registry: MetricsRegistry) -> str:
    """A short digest of a registry's deterministic snapshot.

    Two registries share a digest exactly when they collected identical
    metrics.  The validation harness compares this across telemetry-on
    re-runs and across worker counts: telemetry is contractually
    observational, so the digest must not vary with either.
    """
    material = json.dumps(
        registry.deterministic_snapshot(),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """The machine-readable record of one experiment run."""

    experiment: str
    seed: int | None
    workers: int | None
    config_digest: str | None
    wall_time_s: float
    simulated_ns: int
    metrics: dict
    results: object = None
    #: Which simulator produced the results (``"des"``, ``"batch"``,
    #: ``"analytical"``); ``None`` on records written before backends
    #: existed.
    backend: str | None = None
    #: The ``repro`` package version that produced this record
    #: (single-sourced from :mod:`repro._version`); ``None`` on records
    #: written before versions were stamped.
    version: str | None = None


def build_manifest(
    experiment: str,
    *,
    registry: MetricsRegistry,
    seed: int | None = None,
    workers: int | None = None,
    platform=None,
    wall_time_s: float = 0.0,
    results=None,
    backend: str | None = None,
) -> RunManifest:
    """Assemble a manifest from a finished run's registry.

    ``simulated_ns`` is read from the ``engine.simulated_ns`` counter —
    harvested at each ``System.stop()`` and summed across trials, it is
    the total simulated time the run consumed across all systems.
    """
    from .._version import __version__

    snapshot = registry.snapshot()
    simulated_ns = int(
        snapshot["counters"].get("engine.simulated_ns", 0)
    )
    return RunManifest(
        experiment=experiment,
        seed=seed,
        workers=workers,
        config_digest=config_digest(platform),
        wall_time_s=wall_time_s,
        simulated_ns=simulated_ns,
        metrics=snapshot,
        results=results,
        backend=backend,
        version=__version__,
    )
