"""The metrics registry: counters, gauges, histograms and spans.

Zero-dependency observability primitives for the simulated platform.
Three rules keep telemetry safe to thread through hot layers:

* **Strictly observational.**  Metrics never touch an RNG, never
  schedule events and never advance time — with a registry active or
  not, every experiment result is bit-identical.
* **Deterministic aggregation.**  Histograms use *fixed* bucket edges
  declared at creation, counters and histograms merge by addition and
  gauges by last-write-wins, so merging per-worker snapshots in
  submission order reproduces the serial run exactly.
* **Wall time is quarantined.**  Spans (phase timers) are the only
  wall-clock-dependent metric and live in their own snapshot section;
  :meth:`MetricsRegistry.deterministic_snapshot` drops them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing count (events fired, bits sent...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigError(
                f"counter {self.name}: negative increment {amount}"
            )
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (final frequency, queue depth...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution over fixed, ascending bucket edges.

    ``edges = (e0, ..., en)`` yields ``n + 2`` buckets: ``(-inf, e0]``,
    ``(e0, e1]``, ..., ``(en, +inf)``.  Edges are fixed at creation so
    snapshots from different workers merge bucket-by-bucket without any
    re-binning — the precondition for deterministic aggregation.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum")

    def __init__(self, name: str, edges: tuple[float, ...]) -> None:
        if not edges:
            raise ConfigError(f"histogram {name}: needs at least one edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ConfigError(
                f"histogram {name}: edges must be strictly ascending"
            )
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0

    def _bucket(self, value: float) -> int:
        # Linear scan: edge lists are short (frequency points, latency
        # bands) and observations happen at harvest time, not per event.
        for index, edge in enumerate(self.edges):
            if value <= edge:
                return index
        return len(self.edges)

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if count < 0:
            raise ConfigError(
                f"histogram {self.name}: negative count {count}"
            )
        if count == 0:
            return
        self.counts[self._bucket(value)] += count
        self.count += count
        self.sum += float(value) * count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.2f}>"


class _SpanRecord:
    __slots__ = ("count", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0


class MetricsRegistry:
    """A namespace of metrics with deterministic snapshot/merge.

    Metric names are dotted strings (``engine.events_fired``,
    ``ufs.freq_mhz``).  ``counter``/``gauge``/``histogram`` get-or-create
    by name; registering one name under two different kinds is an error.
    """

    def __init__(self, *, clock=time.perf_counter) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, _SpanRecord] = {}
        self._clock = clock

    # -- get-or-create --------------------------------------------------------

    def _check_free(self, name: str, kind: str) -> None:
        for label, table in (("counter", self._counters),
                             ("gauge", self._gauges),
                             ("histogram", self._histograms)):
            if label != kind and name in table:
                raise ConfigError(
                    f"metric {name!r} already registered as a {label}"
                )

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is not None:
            return existing
        self._check_free(name, "counter")
        created = Counter(name)
        self._counters[name] = created
        return created

    def gauge(self, name: str) -> Gauge:
        existing = self._gauges.get(name)
        if existing is not None:
            return existing
        self._check_free(name, "gauge")
        created = Gauge(name)
        self._gauges[name] = created
        return created

    def histogram(self, name: str,
                  edges: tuple[float, ...]) -> Histogram:
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.edges != tuple(float(e) for e in edges):
                raise ConfigError(
                    f"histogram {name!r} re-registered with different edges"
                )
            return existing
        self._check_free(name, "histogram")
        created = Histogram(name, edges)
        self._histograms[name] = created
        return created

    def inc(self, name: str, amount: int | float = 1) -> None:
        """Shorthand for ``counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str):
        """Time a phase in wall-clock seconds.

        Spans are observability for the *runner* (how long did the sweep
        take), not the simulation, and are excluded from determinism
        guarantees — see :meth:`deterministic_snapshot`.
        """
        start = self._clock()
        try:
            yield
        finally:
            record = self._spans.setdefault(name, _SpanRecord())
            record.count += 1
            record.total_s += self._clock() - start

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, JSON-ready copy of every metric (sorted keys)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "edges": list(hist.edges),
                    "counts": list(hist.counts),
                    "count": hist.count,
                    "sum": hist.sum,
                }
                for name, hist in sorted(self._histograms.items())
            },
            "spans": {
                name: {"count": rec.count, "total_s": rec.total_s}
                for name, rec in sorted(self._spans.items())
            },
        }

    def deterministic_snapshot(self) -> dict:
        """The snapshot minus the wall-clock ``spans`` section."""
        snap = self.snapshot()
        del snap["spans"]
        return snap

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets add; gauges take the merged
        snapshot's value (last write wins); spans add.  Merging worker
        snapshots in submission order therefore reproduces the serial
        aggregation exactly.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, tuple(data["edges"]))
            for index, count in enumerate(data["counts"]):
                hist.counts[index] += count
            hist.count += data["count"]
            hist.sum += data["sum"]
        for name, data in snapshot.get("spans", {}).items():
            record = self._spans.setdefault(name, _SpanRecord())
            record.count += data["count"]
            record.total_s += data["total_s"]

    def clear(self) -> None:
        """Drop every metric (between unrelated runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
