"""The ambient telemetry registry.

Instrumented layers (the engine, the PMU, channels) harvest into
whatever registry is *active* when they tear down.  The active registry
is a module-global rather than a threaded-through parameter so that
telemetry stays opt-in: with no registry activated, instrumented code
pays only a handful of integer increments and harvest becomes a no-op.

``using(registry)`` scopes activation; :func:`activate` /
:func:`deactivate` manage it imperatively (the CLI and the parallel
runner's worker shim use those).
"""

from __future__ import annotations

from contextlib import contextmanager

from .registry import MetricsRegistry

__all__ = ["activate", "active_registry", "deactivate", "using"]

_active: MetricsRegistry | None = None


def active_registry() -> MetricsRegistry | None:
    """The currently active registry, or ``None`` when telemetry is off."""
    return _active


def activate(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Make ``registry`` the ambient registry; returns the previous one."""
    global _active
    previous = _active
    _active = registry
    return previous


def deactivate() -> None:
    """Turn ambient telemetry off."""
    activate(None)


@contextmanager
def using(registry: MetricsRegistry):
    """Activate ``registry`` for the duration of a ``with`` block."""
    previous = activate(registry)
    try:
        yield registry
    finally:
        activate(previous)
