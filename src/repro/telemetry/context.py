"""The ambient telemetry registry.

Instrumented layers (the engine, the PMU, channels) harvest into
whatever registry is *active* when they tear down.  The active registry
is ambient rather than a threaded-through parameter so that telemetry
stays opt-in: with no registry activated, instrumented code pays only a
handful of integer increments and harvest becomes a no-op.

Activation is **per-thread**: each thread starts with no registry and
activates its own.  Parallel runners already follow this discipline —
their workers (processes or threads) activate a fresh registry, run,
and hand a snapshot back to be merged — and per-thread storage makes it
sound for in-process concurrency too: threads running concurrent jobs
(the experiment service's worker pools) can neither harvest into each
other's registries nor clobber the restore of an overlapping
``using()`` block.

``using(registry)`` scopes activation; :func:`activate` /
:func:`deactivate` manage it imperatively (the CLI and the parallel
runner's worker shim use those).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from .registry import MetricsRegistry

__all__ = ["activate", "active_registry", "deactivate", "using"]

_local = threading.local()


def active_registry() -> MetricsRegistry | None:
    """This thread's active registry, or ``None`` when telemetry is off."""
    return getattr(_local, "active", None)


def activate(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Make ``registry`` this thread's ambient registry; the previous one."""
    previous = getattr(_local, "active", None)
    _local.active = registry
    return previous


def deactivate() -> None:
    """Turn ambient telemetry off in this thread."""
    activate(None)


@contextmanager
def using(registry: MetricsRegistry):
    """Activate ``registry`` for the duration of a ``with`` block."""
    previous = activate(registry)
    try:
        yield registry
    finally:
        activate(previous)
