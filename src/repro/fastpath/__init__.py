"""Vectorized and analytical fast-path simulation backends.

See :mod:`repro.fastpath.backend` for the selection API,
:mod:`repro.fastpath.batch` for the bit-identical lattice simulator and
:mod:`repro.fastpath.analytical` for the closed-form estimator.
"""

from .backend import (
    BACKEND_ENV_VAR,
    BACKENDS,
    BATCHABLE_EXPERIMENTS,
    DEFAULT_BACKEND,
    CapacityRequest,
    DefenseRequest,
    SimBackend,
    get_backend,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "BATCHABLE_EXPERIMENTS",
    "DEFAULT_BACKEND",
    "CapacityRequest",
    "DefenseRequest",
    "SimBackend",
    "get_backend",
    "resolve_backend",
]
