"""Backend selection for the experiment runners.

Every experiment runner historically *was* the discrete-event simulator:
``measure_capacity`` built a :class:`~repro.platform.system.System`,
deployed a channel and ran the engine.  The fastpath package splits
"what experiment" from "which simulator":

* ``"des"`` — the event-driven reference simulator (the default; every
  other backend is validated against it);
* ``"batch"`` — the numpy-vectorized lattice simulator
  (:mod:`repro.fastpath.batch`), bit-identical to DES on the supported
  experiment shapes at a fraction of the wall-clock;
* ``"analytical"`` — the closed-form capacity/error estimator
  (:mod:`repro.fastpath.analytical`), statistically matched to DES;
* ``"auto"`` — resolve per experiment: vectorizable sweeps take the
  batch backend, everything else falls back to DES.

Callers pass ``backend=`` (or bundle it in an
:class:`~repro.core.context.ExperimentContext`); ``None`` defers to the
``REPRO_BACKEND`` environment variable and then to ``"des"``, mirroring
how ``REPRO_WORKERS`` feeds the parallel runner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from ..config import PlatformConfig
from ..core.sender import SenderMode
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.evaluation import CapacityPoint
    from ..defenses.evaluation import DefenseReport

__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "BATCHABLE_EXPERIMENTS",
    "DEFAULT_BACKEND",
    "CapacityRequest",
    "DefenseRequest",
    "SimBackend",
    "get_backend",
    "resolve_backend",
]

#: Every accepted ``backend=`` spelling.  ``"auto"`` is resolved to one
#: of the other three before any work happens.
BACKENDS = ("des", "batch", "analytical", "auto")

DEFAULT_BACKEND = "des"

#: Environment override consulted when ``backend=None`` everywhere,
#: mirroring the ``REPRO_WORKERS`` convention of the parallel runner.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Experiment names the vectorized backends can run end to end.  The
#: ``"auto"`` heuristic sends these to the batch backend; everything
#: else (channel comparison matrix, fingerprinting, traces with custom
#: workloads) keeps the full DES.
BATCHABLE_EXPERIMENTS = frozenset({
    "measure_capacity",
    "capacity_sweep",
    "mean_error_over_seeds",
    "channel_under_defense",
    "evaluate_defenses",
})


@dataclass(frozen=True)
class CapacityRequest:
    """One ``measure_capacity`` call, as plain data.

    Field for field the keyword surface of
    :func:`repro.core.evaluation.measure_capacity`; a backend consumes a
    sequence of these and returns one
    :class:`~repro.core.evaluation.CapacityPoint` per request.
    ``interval_ms`` is carried exactly as the caller passed it because
    the payload seed label interpolates the raw value.
    """

    interval_ms: float
    bits: int = 120
    cross_processor: bool = False
    seed: int = 0
    platform: PlatformConfig | None = None
    sender_mode: SenderMode = SenderMode.STALL


@dataclass(frozen=True)
class DefenseRequest:
    """One ``channel_under_defense`` call, as plain data."""

    defense: str
    bits: int = 80
    interval_ms: float = 38.0
    seed: int = 0
    platform: PlatformConfig | None = None


@runtime_checkable
class SimBackend(Protocol):
    """What a simulation backend must provide.

    A backend turns request records into the same result dataclasses
    the DES runners produce, so callers never branch on the backend
    beyond choosing one.  Equivalence contract: ``batch`` results are
    bit-identical to ``des`` on the supported shapes (enforced by
    :func:`repro.validate.differential.run_differential_suite`);
    ``analytical`` results agree within its documented statistical
    tolerance.
    """

    name: str

    def capacity_points(
        self, requests: Sequence[CapacityRequest]
    ) -> "list[CapacityPoint]":
        """One Figure 9/10 capacity point per request."""
        ...

    def defense_reports(
        self, requests: Sequence[DefenseRequest]
    ) -> "list[DefenseReport]":
        """One Table 3 defense report per request."""
        ...


class DesBackend:
    """The reference backend: one full DES run per request."""

    name = "des"

    def capacity_points(self, requests):
        from ..core.evaluation import measure_capacity

        return [
            measure_capacity(
                interval_ms=r.interval_ms,
                bits=r.bits,
                cross_processor=r.cross_processor,
                seed=r.seed,
                platform=r.platform,
                sender_mode=r.sender_mode,
            )
            for r in requests
        ]

    def defense_reports(self, requests):
        from ..defenses.evaluation import channel_under_defense

        return [
            channel_under_defense(
                r.defense,
                bits=r.bits,
                interval_ms=r.interval_ms,
                seed=r.seed,
                platform=r.platform,
            )
            for r in requests
        ]


def resolve_backend(backend: str | None = None, *,
                    experiment: str | None = None) -> str:
    """Normalise a backend request to a concrete backend name.

    ``None`` falls back to ``$REPRO_BACKEND`` and then to ``"des"``
    (an empty/blank variable counts as unset).  ``"auto"`` resolves per
    experiment: members of :data:`BATCHABLE_EXPERIMENTS` go to
    ``"batch"``, everything else to ``"des"``.  Anything not in
    :data:`BACKENDS` raises :class:`~repro.errors.ConfigError` — a typo
    silently running the wrong simulator would be far worse.
    """
    if backend is None:
        raw = os.environ.get(BACKEND_ENV_VAR, "").strip()
        backend = raw if raw else DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ConfigError(
            f"unknown backend {backend!r}: choose one of "
            f"{', '.join(BACKENDS)} (or set ${BACKEND_ENV_VAR})"
        )
    if backend == "auto":
        return (
            "batch" if experiment in BATCHABLE_EXPERIMENTS else "des"
        )
    return backend


def get_backend(name: str, *, experiment: str | None = None) -> SimBackend:
    """Instantiate the backend for a (possibly symbolic) name."""
    resolved = resolve_backend(name, experiment=experiment)
    if resolved == "des":
        return DesBackend()
    if resolved == "batch":
        from .batch import BatchBackend

        return BatchBackend()
    from .analytical import AnalyticalBackend

    return AnalyticalBackend()
