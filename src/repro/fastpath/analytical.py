"""The closed-form (lumos-style) capacity/error estimator.

The batch backend shows that a trial's frequency lattice is fully
deterministic — all randomness lives in the receiver's measurement
noise.  This backend therefore reuses Phase A verbatim and replaces the
Phase B Monte-Carlo replay with probability calculus:

* A measurement window averages ``n`` timed loads split over segments
  of constant frequency, then adds one window-bias draw.  Its
  statistic is, exactly in expectation and to CLT accuracy in shape
  (``n`` is ~2000 per window), Gaussian with

  - mean  ``mu = sum(n_j * mean_j)/n + p*theta``  (the sparse
    exponential tail contributes ``p*theta`` per sample),
  - var   ``(sigma^2 + 2*p*theta^2 - (p*theta)^2)/n + w^2``  (tail
    variance plus the window jitter ``w``).

* ``decode_bit`` is a deterministic region of the ``(T1, T2)`` plane,
  so the per-bit probability of decoding a 1 is a 2-D Gaussian integral
  evaluated on a Gauss–Hermite grid against the *real*
  :func:`~repro.core.protocol.decode_bit` decision tree.

* The expected bit-error rate is the mean per-bit error probability;
  capacity applies the same ``raw * (1 - H(e))`` formula the DES uses.

**Documented tolerance.**  A DES run reports the *realised* error rate
of ``bits`` Bernoulli decodes, so against the analytical expectation it
scatters with standard deviation ``sqrt(sum p_i*(1-p_i))/bits``.  The
suite's acceptance band is four of those sigmas plus a 0.02 absolute
slack for the CLT/quadrature approximation error
(:func:`error_tolerance`); capacity is compared through the same band
mapped via the capacity formula's Lipschitz bound at the operating
point (the differential suite simply re-derives capacity from the
error band's endpoints).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.entropy import channel_capacity_bps
from ..cache.hierarchy import Level
from ..core.evaluation import CapacityPoint
from ..defenses.evaluation import DefenseReport
from ..platform.latency import LatencyModel
from ..rng import child_rng
from ..telemetry.context import active_registry
from .backend import CapacityRequest, DefenseRequest
from .batch import (
    _PMU_STAGGER_NS,
    _capacity_plan,
    _defense_plan,
    _lattices_for,
    _TrialPlan,
)
from ..core.protocol import calibrate_endpoints

__all__ = [
    "AnalyticalBackend",
    "AnalyticalEstimate",
    "analytical_capacity_points",
    "analytical_defense_reports",
    "analytical_estimates",
    "error_tolerance",
]

#: Gauss–Hermite nodes per axis of the (T1, T2) integral.  48 nodes
#: put the quadrature error orders of magnitude below the statistical
#: tolerance.
_GH_NODES = 48


@dataclass(frozen=True)
class AnalyticalEstimate:
    """One trial's closed-form prediction plus its acceptance band."""

    #: Expected bit-error rate (mean per-bit error probability).
    error_rate: float
    #: Expected capacity via ``raw * (1 - H(e))``.
    capacity_bps: float
    #: Per-bit probabilities that the decoded bit differs from the sent
    #: bit, in payload order.
    bit_error_probs: tuple[float, ...]
    #: Documented tolerance: a DES realised error rate should land
    #: within ``error_rate +/- error_tolerance``.
    error_tolerance: float


def error_tolerance(bit_error_probs: Sequence[float],
                    slack: float = 0.02) -> float:
    """Acceptance band half-width for a realised DES error rate.

    Four standard deviations of the Poisson-binomial realised-BER
    distribution plus an absolute ``slack`` for the CLT and quadrature
    approximations.
    """
    bits = len(bit_error_probs)
    if bits == 0:
        return slack
    variance = sum(p * (1.0 - p) for p in bit_error_probs)
    return 4.0 * math.sqrt(variance) / bits + slack


def _window_moments(plan: _TrialPlan, model: LatencyModel,
                    times: list[int], freqs: list[int],
                    start: int, flows: float) -> tuple[float, float]:
    """Mean and variance of one measurement window's statistic."""
    from bisect import bisect_right

    config = plan.platform.latency
    period = plan.platform.ufs.period_ns
    offset = plan.receiver_socket * _PMU_STAGGER_NS
    deadline = start + plan.config.measure_ns
    hops = plan.config.hops
    now = start
    weighted = 0.0
    count = 0
    while now < deadline:
        step = (now - offset) // period + 1
        next_tick = offset + max(step, 1) * period
        seg_end = min(deadline, next_tick)
        mhz = freqs[bisect_right(times, now) - 1]
        mean_lat = model.mean_llc_cycles(hops, mhz)
        iter_ns = model.loop_iteration_ns(mean_lat, plan.receiver_core_mhz)
        samples = max(int((seg_end - now) / iter_ns), 1)
        weighted += samples * model.mean_cycles(
            Level.LLC, hops, mhz, flows
        )
        count += samples
        now = seg_end
    tail_p = config.noise_tail_prob
    tail_theta = config.noise_tail_cycles
    mean = weighted / count + tail_p * tail_theta
    per_sample_var = (
        config.noise_sigma_cycles ** 2
        + 2.0 * tail_p * tail_theta ** 2
        - (tail_p * tail_theta) ** 2
    )
    variance = per_sample_var / count + config.window_jitter_cycles ** 2
    return mean, variance


def _decode_one_probability(mu1: float, var1: float, mu2: float,
                            var2: float, endpoints, config,
                            nodes: tuple[np.ndarray, np.ndarray],
                            ) -> float:
    """P(decode_bit(T1, T2) == 1) for independent Gaussian T1/T2."""
    x, w = nodes
    t1 = mu1 + math.sqrt(2.0 * var1) * x
    t2 = mu2 + math.sqrt(2.0 * var2) * x
    weights = w / math.sqrt(math.pi)
    T1 = t1[:, None]
    T2 = t2[None, :]
    ceiling = endpoints.t_freq_max_cycles + config.flat_tolerance_cycles
    floor = endpoints.t_freq_min_cycles - config.flat_tolerance_cycles
    flat_high = (T1 <= ceiling) & (T2 <= ceiling)
    flat_low = ~flat_high & (T1 >= floor) & (T2 >= floor)
    remaining = ~flat_high & ~flat_low
    falling = remaining & (T2 < T1 - config.trend_margin_cycles)
    rising = (remaining & ~falling
              & (T2 > T1 + config.trend_margin_cycles))
    ambiguous = remaining & ~falling & ~rising
    ones = flat_high | falling | (ambiguous & (T2 <= T1))
    grid = weights[:, None] * weights[None, :]
    return float((grid * ones).sum())


def analytical_estimates(
    plans: list[_TrialPlan],
) -> list[AnalyticalEstimate]:
    """Closed-form per-trial estimates over shared Phase A lattices."""
    lattices = _lattices_for(plans)
    nodes = np.polynomial.hermite.hermgauss(_GH_NODES)
    registry = active_registry()
    if registry is not None:
        registry.inc("fastpath.analytical.evals", len(plans))
    estimates: list[AnalyticalEstimate] = []
    for plan, lattice in zip(plans, lattices):
        model = LatencyModel(
            plan.platform.latency,
            child_rng(plan.seed, "latency-noise"),
        )
        endpoints = calibrate_endpoints(
            plan.platform, model, hops=plan.config.hops,
            cross_processor=plan.cross,
        )
        times = [point[0] for point in lattice[plan.receiver_socket]]
        freqs = [point[1] for point in lattice[plan.receiver_socket]]
        interval = plan.config.interval_ns
        measure = plan.config.measure_ns
        probs: list[float] = []
        for index, bit in enumerate(plan.payload):
            flows = plan.mark_flows if bit else plan.space_flows
            mu1, var1 = _window_moments(
                plan, model, times, freqs, index * interval, flows
            )
            mu2, var2 = _window_moments(
                plan, model, times, freqs,
                (index + 1) * interval - measure, flows,
            )
            p_one = _decode_one_probability(
                mu1, var1, mu2, var2, endpoints, plan.config, nodes
            )
            probs.append(1.0 - p_one if bit else p_one)
        expected_error = (
            sum(probs) / len(probs) if probs else 0.0
        )
        raw_rate = 1e9 / interval
        estimates.append(
            AnalyticalEstimate(
                error_rate=expected_error,
                capacity_bps=channel_capacity_bps(
                    raw_rate, expected_error
                ),
                bit_error_probs=tuple(probs),
                error_tolerance=error_tolerance(probs),
            )
        )
    return estimates


def analytical_capacity_points(
    requests: Sequence[CapacityRequest],
) -> list[CapacityPoint]:
    """Instant capacity estimates matching ``measure_capacity``'s shape."""
    plans = [_capacity_plan(request) for request in requests]
    estimates = analytical_estimates(plans)
    return [
        CapacityPoint(
            interval_ms=request.interval_ms,
            raw_rate_bps=1e9 / plan.config.interval_ns,
            error_rate=estimate.error_rate,
            capacity_bps=estimate.capacity_bps,
            bits=request.bits,
        )
        for request, plan, estimate in zip(requests, plans, estimates)
    ]


def analytical_defense_reports(
    requests: Sequence[DefenseRequest],
) -> list[DefenseReport]:
    """Instant defense-outcome estimates matching the Table 3 shape."""
    plans = [_defense_plan(request) for request in requests]
    estimates = analytical_estimates(plans)
    return [
        DefenseReport(
            defense=request.defense,
            error_rate=estimate.error_rate,
            capacity_bps=estimate.capacity_bps,
        )
        for request, estimate in zip(requests, estimates)
    ]


class AnalyticalBackend:
    """:class:`~repro.fastpath.backend.SimBackend` in closed form."""

    name = "analytical"

    def capacity_points(self, requests):
        return analytical_capacity_points(requests)

    def defense_reports(self, requests):
        return analytical_defense_reports(requests)
