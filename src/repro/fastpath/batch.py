"""The numpy-vectorized batch backend.

The DES spends almost all of a capacity trial constructing and ticking
a full :class:`~repro.platform.system.System` even though, for the
Figure 9/10 and Table 3 workloads, every event time is known up front:
sender and receiver flip activity profiles on the fixed interval grid,
the PMU evaluates every 10 ms, and the frequency never feeds back into
*when* anything happens — only into what the receiver measures.  That
decouples a trial into two phases this module exploits:

**Phase A — the frequency lattice.**  All trials of a group advance
together through the merged event stream of per-socket PMU grids (10 ms
period, 0.5 ms socket stagger) and randomized-defense repicks (100 ms,
ordered before colocated ticks exactly as the event queue does).  Per
tick, each trial's observation is folded by the *same*
:func:`~repro.power.ufs.accumulate_observation` the PMU uses, over
replica :class:`~repro.cpu.activity.ProfileTimeline` histories of the
touched cores only (untouched cores contribute exact zeros), and one
:func:`~repro.power.ufs.ufs_control_step` call advances every trial's
socket state as arrays.  Element-wise IEEE identity of that shared
control law is what makes the lattice bit-identical to the DES
frequency timeline.

**Phase B — the receiver replay.**  Per trial, a fresh
:class:`~repro.platform.latency.LatencyModel` on the trial's
``latency-noise`` stream replays the receiver's RNG consumption in DES
order: the probe warm-up draws, then per measurement window the
per-segment sufficient statistics
(:meth:`~repro.platform.latency.LatencyModel.segment_llc_sum`) with
segments split at the receiver socket's PMU grid and frequencies read
from the Phase A lattice, then one window bias.  Decoding goes through
the real :func:`~repro.core.protocol.decode_bit` against the real
:func:`~repro.core.protocol.calibrate_endpoints`.

Supported shapes are exactly the ``measure_capacity`` /
``channel_under_defense`` surfaces (including cross-processor
deployments and every Table 3 defense); anything else belongs on the
DES.  Equivalence is enforced by the differential suite.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import PlatformConfig, default_platform_config
from ..core.channel import TransmissionResult
from ..core.evaluation import CapacityPoint, random_bits
from ..core.protocol import ChannelConfig, calibrate_endpoints, decode_bit
from ..core.sender import SenderMode
from ..cpu.activity import IDLE, ProfileTimeline
from ..defenses.evaluation import DEFENSE_KEYS, DefenseReport
from ..errors import ChannelError
from ..noc.contention import ContentionTracker
from ..noc.topology import MeshTopology
from ..platform.actor import MEASUREMENT_PROFILE
from ..platform.latency import LatencyModel
from ..platform.system import _PMU_STAGGER_NS
from ..power.ufs import accumulate_observation, ufs_control_step
from ..rng import child_rng
from ..telemetry.context import active_registry
from ..units import ms
from ..workloads.loops import stalling_profile, traffic_profile
from .backend import CapacityRequest, DefenseRequest

__all__ = [
    "BatchBackend",
    "batch_capacity_points",
    "batch_defense_reports",
    "batch_frequency_lattices",
]

#: Fixed channel geometry of the supported experiment surfaces
#: (:func:`measure_capacity` / :func:`channel_under_defense` never vary
#: these).
_SENDER_SOCKET = 0
_SENDER_CORE = 0
_SENDER_HOPS = 3
_RECEIVER_CORE = 8
_BUSY_CORE = 15
_BUSY_HOPS = 3
_REPICK_PERIOD_NS = ms(100.0)
_PROBE_WARM_ROUNDS = 3


@dataclass
class _CoreSchedule:
    """One touched core's full profile history plus its turbo flag."""

    timeline: ProfileTimeline
    above_base: bool


@dataclass
class _TrialPlan:
    """Everything Phase A/B need to know about one transmission."""

    platform: PlatformConfig  # effective (defense-modified) config
    seed: int
    config: ChannelConfig
    payload: list[int]
    cross: bool
    receiver_socket: int
    receiver_core_mhz: int
    duration_ns: int
    #: per socket: core id -> schedule (touched cores only)
    cores: list[dict[int, _CoreSchedule]]
    init_limits: list[tuple[int, int]]
    init_freq: list[int]
    init_history: list[list[tuple[int, int]]]
    repick_rng: np.random.Generator | None
    mark_flows: float
    space_flows: float


def _group_key(platform: PlatformConfig) -> str:
    """Trials sharing one lattice must agree on everything but the
    per-trial MSR limits (the restricted-range defense narrows min/max
    without leaving the group)."""
    ufs = dataclasses.replace(
        platform.ufs, min_freq_mhz=0, max_freq_mhz=0
    )
    return repr(dataclasses.replace(platform, ufs=ufs))


def _route_flows(tracker: ContentionTracker, route, demand_rate: float,
                 ) -> float:
    competing = tracker.route_contention(route, observer_domain=0)
    return competing / demand_rate


def _plan_trial(*, platform: PlatformConfig | None, seed: int,
                interval_ms: float, payload: list[int],
                cross_processor: bool = False,
                sender_mode: SenderMode = SenderMode.STALL,
                defense: str | None = None) -> _TrialPlan:
    """Compile one channel deployment into a :class:`_TrialPlan`.

    Mirrors, in data, exactly what ``measure_capacity`` /
    ``channel_under_defense`` build in objects: same defaults, same
    slice selection, same profile-change times.
    """
    base = platform if platform is not None else default_platform_config()
    effective = base
    if defense == "restricted_1500_1700":
        effective = base.with_ufs(min_freq_mhz=1500, max_freq_mhz=1700)
    config = ChannelConfig(interval_ns=ms(interval_ms))
    config.validate()
    ufs = effective.ufs
    num_sockets = effective.num_sockets
    receiver_socket = 1 if cross_processor else 0
    if receiver_socket >= num_sockets:
        raise ChannelError(
            "cross-processor deployment needs a second socket"
        )
    if not cross_processor and _RECEIVER_CORE == _SENDER_CORE:
        raise ChannelError("sender and receiver share a core")

    meshes = [MeshTopology(s) for s in effective.sockets]
    mesh_s = meshes[_SENDER_SOCKET]
    mesh_r = meshes[receiver_socket]

    # Sender target slice (what _SenderThread.on_attach picks).
    sender_slices = mesh_s.slices_at_distance(_SENDER_CORE, _SENDER_HOPS)
    if not sender_slices:
        from ..errors import PlacementError

        raise PlacementError(
            f"no slice at distance {_SENDER_HOPS} from core {_SENDER_CORE}"
        )
    sender_route = mesh_s.core_slice_route(_SENDER_CORE, sender_slices[0])

    # Receiver measurement slice (Actor.slice_at_distance, full hash).
    meas_slices = mesh_r.slices_at_distance(_RECEIVER_CORE, config.hops)
    if not meas_slices:
        raise ChannelError(
            f"no slice at distance {config.hops} from the receiver core"
        )
    meas_slice = meas_slices[0]
    receiver_route = mesh_r.core_slice_route(_RECEIVER_CORE, meas_slice)

    # Busy-uncore defense thread placement (SteadyWorkload.on_attach).
    busy_profile = None
    busy_route = None
    if defense == "busy_uncore":
        mesh0 = meshes[0]
        busy_profile = traffic_profile(_BUSY_HOPS)
        candidates = mesh0.slices_at_distance(_BUSY_CORE, _BUSY_HOPS)
        if candidates:
            busy_slice = candidates[0]
        else:
            busy_slice = min(
                range(mesh0.num_cores),
                key=lambda s: (abs(mesh0.hops(_BUSY_CORE, s) - _BUSY_HOPS),
                               -mesh0.hops(_BUSY_CORE, s)),
            )
            busy_profile = dataclasses.replace(
                busy_profile,
                mean_hops=float(mesh0.hops(_BUSY_CORE, busy_slice)),
            )
        busy_route = mesh0.core_slice_route(_BUSY_CORE, busy_slice)

    # Receiver-visible contention during mark/space intervals.  The
    # receiver's own measurement loop registers no flow; the sender's
    # flow lives on its own socket's tracker, invisible cross-socket.
    mark_profile = (
        stalling_profile(_SENDER_HOPS)
        if sender_mode is SenderMode.STALL
        else traffic_profile(_SENDER_HOPS)
    )
    demand_rate = effective.demand.traffic_loop_rate_per_us

    def receiver_flows(sender_active: bool) -> float:
        tracker = ContentionTracker()
        if busy_route is not None and receiver_socket == 0:
            tracker.add_flow(busy_route, busy_profile.llc_rate_per_us,
                             domain=0)
        if sender_active and receiver_socket == _SENDER_SOCKET:
            tracker.add_flow(sender_route, mark_profile.llc_rate_per_us,
                             domain=0)
        return _route_flows(tracker, receiver_route, demand_rate)

    # Profile schedules of every touched core, in DES call order.
    governor = defense == "performance_governor"
    cores: list[dict[int, _CoreSchedule]] = [
        {} for _ in range(num_sockets)
    ]

    def schedule(socket_id: int, core_id: int) -> ProfileTimeline:
        entry = cores[socket_id].get(core_id)
        if entry is None:
            entry = _CoreSchedule(
                timeline=ProfileTimeline(),
                above_base=governor and socket_id == 0,
            )
            cores[socket_id][core_id] = entry
        return entry.timeline

    interval = config.interval_ns
    measure = config.measure_ns
    bits = len(payload)
    duration = bits * interval

    sender_tl = schedule(_SENDER_SOCKET, _SENDER_CORE)
    sender_tl.set_profile(0, IDLE)  # UFSender ctor space()
    for index, bit in enumerate(payload):
        sender_tl.set_profile(index * interval,
                              mark_profile if bit else IDLE)
    sender_tl.set_profile(duration, IDLE)  # trailing drive(0)

    receiver_tl = schedule(receiver_socket, _RECEIVER_CORE)
    for index in range(bits):
        start = index * interval
        receiver_tl.set_profile(start, MEASUREMENT_PROFILE)
        receiver_tl.set_profile(start + measure, IDLE)
        receiver_tl.set_profile(start + interval - measure,
                                MEASUREMENT_PROFILE)
        receiver_tl.set_profile(start + interval, IDLE)

    if busy_route is not None:
        schedule(0, _BUSY_CORE).set_profile(0, busy_profile)

    # t=0 MSR state: base limits, idle clamp, then the defense's writes
    # in System-construction order.
    init_limits = [(ufs.min_freq_mhz, ufs.max_freq_mhz)] * num_sockets
    init_freq = [
        max(ufs.min_freq_mhz,
            min(ufs.max_freq_mhz, ufs.active_idle_high_mhz))
        for _ in range(num_sockets)
    ]
    init_history = [[(0, f)] for f in init_freq]
    repick_rng = None

    fixed = None
    if defense == "fixed_max":
        fixed = ufs.max_freq_mhz
    elif defense == "fixed_mid":
        fixed = 1800
    elif defense == "randomized":
        repick_rng = child_rng(seed, "random-freq-defense")
        points = ufs.frequency_points_mhz
        fixed = int(points[repick_rng.integers(len(points))])
    if fixed is not None:
        init_limits = [(fixed, fixed)] * num_sockets
        for socket_id in range(num_sockets):
            if init_freq[socket_id] != fixed:
                init_freq[socket_id] = fixed
                init_history[socket_id].append((0, fixed))

    receiver_core_mhz = effective.sockets[receiver_socket].base_freq_mhz
    if governor and receiver_socket == 0:
        receiver_core_mhz = 3200  # DvfsGovernor PERFORMANCE turbo pin

    return _TrialPlan(
        platform=effective,
        seed=seed,
        config=config,
        payload=list(payload),
        cross=cross_processor,
        receiver_socket=receiver_socket,
        receiver_core_mhz=receiver_core_mhz,
        duration_ns=duration,
        cores=cores,
        init_limits=init_limits,
        init_freq=init_freq,
        init_history=init_history,
        repick_rng=repick_rng,
        mark_flows=receiver_flows(True),
        space_flows=receiver_flows(False),
    )


# -- Phase A: the frequency lattice -------------------------------------------


def _run_lattice(plans: list[_TrialPlan],
                 ) -> list[list[list[tuple[int, int]]]]:
    """Advance every plan's UFS state to its horizon; return, per plan
    and per socket, the frequency history as ``(time_ns, mhz)`` points
    (initial point included, equal-frequency writes deduplicated — the
    exact :meth:`FrequencyTimeline.points` shape)."""
    rep = plans[0].platform
    ufs = rep.ufs
    demand = rep.demand
    num_sockets = rep.num_sockets
    coupled = rep.cross_socket_coupling and num_sockets > 1
    period = ufs.period_ns
    observation = ufs.observation_ns
    count = len(plans)
    durations = [plan.duration_ns for plan in plans]
    horizon = max(durations)

    freq = [
        np.array([plan.init_freq[s] for plan in plans], dtype=np.int64)
        for s in range(num_sockets)
    ]
    dither = [np.zeros(count, dtype=np.int64) for _ in range(num_sockets)]
    countdown = [
        np.zeros(count, dtype=np.int64) for _ in range(num_sockets)
    ]
    min_lim = [
        np.array([plan.init_limits[s][0] for plan in plans],
                 dtype=np.int64)
        for s in range(num_sockets)
    ]
    max_lim = [
        np.array([plan.init_limits[s][1] for plan in plans],
                 dtype=np.int64)
        for s in range(num_sockets)
    ]
    history = [
        [list(plan.init_history[s]) for s in range(num_sockets)]
        for plan in plans
    ]

    # Merged event stream.  Repicks share their instants with socket-0
    # ticks; the defense task was (re)scheduled earlier than the PMU's
    # reschedule, so it fires first — order key 0 vs 1 encodes that.
    events: list[tuple[int, int, int]] = []
    for socket_id in range(num_sockets):
        tick = period + socket_id * _PMU_STAGGER_NS
        while tick <= horizon:
            events.append((tick, 1, socket_id))
            tick += period
    if any(plan.repick_rng is not None for plan in plans):
        repick = _REPICK_PERIOD_NS
        while repick <= horizon:
            events.append((repick, 0, -1))
            repick += _REPICK_PERIOD_NS
    events.sort()

    for time_ns, order, socket_id in events:
        if order == 0:  # randomized-defense repick, all sockets
            for index, plan in enumerate(plans):
                if plan.repick_rng is None or time_ns > durations[index]:
                    continue
                points = plan.platform.ufs.frequency_points_mhz
                pick = int(points[plan.repick_rng.integers(len(points))])
                for s in range(num_sockets):
                    min_lim[s][index] = pick
                    max_lim[s][index] = pick
                    if int(freq[s][index]) != pick:
                        freq[s][index] = pick
                        history[index][s].append((time_ns, pick))
            continue

        window_start = time_ns - observation
        active = np.zeros(count, dtype=np.int64)
        stalled = np.zeros(count, dtype=np.int64)
        llc_rate = np.zeros(count, dtype=np.float64)
        noc_score = np.zeros(count, dtype=np.float64)
        max_stall = np.zeros(count, dtype=np.float64)
        turbo = np.zeros(count, dtype=bool)
        mask = np.zeros(count, dtype=bool)
        for index, plan in enumerate(plans):
            if time_ns > durations[index]:
                continue
            mask[index] = True
            touched = plan.cores[socket_id]
            if not touched:
                continue  # all-idle socket: the fold yields exact zeros
            (active[index], stalled[index], llc_rate[index],
             noc_score[index], max_stall[index], turbo[index]) = (
                accumulate_observation(
                    (
                        (entry.timeline.window_stats(window_start,
                                                     time_ns),
                         entry.above_base)
                        for _, entry in sorted(touched.items())
                    ),
                    ufs.stall_ratio_threshold,
                )
            )
        if not mask.any():
            continue

        remote = None
        if coupled:
            others = [freq[s] for s in range(num_sockets)
                      if s != socket_id]
            remote = (others[0] if len(others) == 1
                      else np.maximum.reduce(others))
        result = ufs_control_step(
            freq_mhz=freq[socket_id],
            dither_phase=dither[socket_id],
            slow_countdown=countdown[socket_id],
            min_limit_mhz=min_lim[socket_id],
            max_limit_mhz=max_lim[socket_id],
            active=active,
            stalled=stalled,
            llc_rate=llc_rate,
            noc_score=noc_score,
            max_stall=max_stall,
            turbo=turbo,
            remote_mhz=remote,
            ufs=ufs,
            demand=demand,
            coupling_lag_mhz=rep.coupling_lag_mhz,
        )
        freq[socket_id] = np.where(mask, result.freq_mhz,
                                   freq[socket_id])
        dither[socket_id] = np.where(mask, result.dither_phase,
                                     dither[socket_id])
        countdown[socket_id] = np.where(mask, result.slow_countdown,
                                        countdown[socket_id])
        for index in np.flatnonzero(mask):
            new_freq = int(freq[socket_id][index])
            if history[index][socket_id][-1][1] != new_freq:
                history[index][socket_id].append((time_ns, new_freq))

    return history


# -- Phase B: the receiver replay ---------------------------------------------


def _replay_trial(plan: _TrialPlan,
                  lattice: list[list[tuple[int, int]]],
                  ) -> TransmissionResult:
    """Replay the receiver's RNG stream against one trial's lattice."""
    model = LatencyModel(
        plan.platform.latency, child_rng(plan.seed, "latency-noise")
    )
    for _ in range(_PROBE_WARM_ROUNDS * plan.config.list_size):
        model._noise(1)  # probe warm-up timed loads
    endpoints = calibrate_endpoints(
        plan.platform, model, hops=plan.config.hops,
        cross_processor=plan.cross,
    )

    times = [point[0] for point in lattice[plan.receiver_socket]]
    freqs = [point[1] for point in lattice[plan.receiver_socket]]
    period = plan.platform.ufs.period_ns
    offset = plan.receiver_socket * _PMU_STAGGER_NS
    interval = plan.config.interval_ns
    measure = plan.config.measure_ns
    hops = plan.config.hops
    core_mhz = plan.receiver_core_mhz

    def window(start: int, flows: float) -> float:
        deadline = start + measure
        now = start
        total = 0.0
        count = 0
        while now < deadline:
            step = (now - offset) // period + 1
            next_tick = offset + max(step, 1) * period
            seg_end = min(deadline, next_tick)
            mhz = freqs[bisect_right(times, now) - 1]
            mean_lat = model.mean_llc_cycles(hops, mhz)
            iter_ns = model.loop_iteration_ns(mean_lat, core_mhz)
            samples = max(int((seg_end - now) / iter_ns), 1)
            total += model.segment_llc_sum(samples, hops, mhz, flows)
            count += samples
            now = seg_end
        return total / count + model.window_bias()

    received: list[int] = []
    for index, bit in enumerate(plan.payload):
        flows = plan.mark_flows if bit else plan.space_flows
        t1 = window(index * interval, flows)
        t2 = window((index + 1) * interval - measure, flows)
        received.append(decode_bit(t1, t2, endpoints, plan.config))
    return TransmissionResult(
        sent=tuple(plan.payload),
        received=tuple(received),
        interval_ns=interval,
        duration_ns=plan.duration_ns,
    )


# -- driver -------------------------------------------------------------------


def _lattices_for(plans: list[_TrialPlan],
                  ) -> list[list[list[tuple[int, int]]]]:
    """Group compatible plans onto shared lattices; submission order."""
    groups: dict[str, list[int]] = {}
    for index, plan in enumerate(plans):
        groups.setdefault(_group_key(plan.platform), []).append(index)
    lattices: list[list[list[tuple[int, int]]] | None] = (
        [None] * len(plans)
    )
    for members in groups.values():
        group_histories = _run_lattice([plans[i] for i in members])
        for slot, index in enumerate(members):
            lattices[index] = group_histories[slot]
    return lattices


def _run_transmissions(plans: list[_TrialPlan]) -> list[TransmissionResult]:
    lattices = _lattices_for(plans)
    registry = active_registry()
    if registry is not None:
        registry.inc("fastpath.batch.trials", len(plans))
    return [
        _replay_trial(plan, lattice)
        for plan, lattice in zip(plans, lattices)
    ]


def _capacity_plan(request: CapacityRequest) -> _TrialPlan:
    payload = random_bits(
        request.bits, request.seed, f"payload-{request.interval_ms}"
    )
    return _plan_trial(
        platform=request.platform,
        seed=request.seed,
        interval_ms=request.interval_ms,
        payload=payload,
        cross_processor=request.cross_processor,
        sender_mode=request.sender_mode,
    )


def _defense_plan(request: DefenseRequest) -> _TrialPlan:
    if request.defense not in DEFENSE_KEYS:
        raise ValueError(f"unknown defense {request.defense!r}")
    payload = random_bits(
        request.bits, request.seed, f"defense-{request.defense}"
    )
    return _plan_trial(
        platform=request.platform,
        seed=request.seed,
        interval_ms=request.interval_ms,
        payload=payload,
        defense=request.defense,
    )


def batch_capacity_points(
    requests: Sequence[CapacityRequest],
) -> list[CapacityPoint]:
    """Vectorized ``measure_capacity`` over many requests at once."""
    plans = [_capacity_plan(request) for request in requests]
    results = _run_transmissions(plans)
    return [
        CapacityPoint(
            interval_ms=request.interval_ms,
            raw_rate_bps=result.raw_rate_bps,
            error_rate=result.error_rate,
            capacity_bps=result.capacity_bps,
            bits=request.bits,
        )
        for request, result in zip(requests, results)
    ]


def batch_defense_reports(
    requests: Sequence[DefenseRequest],
) -> list[DefenseReport]:
    """Vectorized ``channel_under_defense`` over many requests."""
    plans = [_defense_plan(request) for request in requests]
    results = _run_transmissions(plans)
    return [
        DefenseReport(
            defense=request.defense,
            error_rate=result.error_rate,
            capacity_bps=result.capacity_bps,
        )
        for request, result in zip(requests, results)
    ]


def batch_frequency_lattices(
    requests: Sequence[CapacityRequest | DefenseRequest],
) -> list[list[tuple[tuple[int, int], ...]]]:
    """Phase A only: per request, per socket, the ``(time_ns, mhz)``
    frequency points.  The validation oracles use this to assert every
    batch frequency stays on the trial's UFS operating-point grid."""
    plans = [
        _defense_plan(request) if isinstance(request, DefenseRequest)
        else _capacity_plan(request)
        for request in requests
    ]
    lattices = _lattices_for(plans)
    return [
        [tuple(socket_points) for socket_points in lattice]
        for lattice in lattices
    ]


class BatchBackend:
    """:class:`~repro.fastpath.backend.SimBackend` over the lattice."""

    name = "batch"

    def capacity_points(self, requests):
        return batch_capacity_points(requests)

    def defense_reports(self, requests):
        return batch_defense_reports(requests)
