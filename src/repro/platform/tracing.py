"""Frequency-trace extraction (the figures' raw material).

Section 3 collects uncore frequency traces by sampling the uclk MSR
every 200 us; Section 5's attacker samples every 3 ms through the
latency probe.  Privileged traces are reconstructed here directly from
the PMU's frequency timeline — sampling after the fact is exact and
costs no simulation events.
"""

from __future__ import annotations

import numpy as np

from ..power.timeline import FrequencyTimeline


def frequency_trace(timeline: FrequencyTimeline, t0_ns: int, t1_ns: int,
                    step_ns: int = 200_000) -> tuple[np.ndarray, np.ndarray]:
    """Sample a timeline at a fixed cadence.

    Returns ``(times_ms, freqs_mhz)`` — times relative to ``t0_ns`` in
    milliseconds, matching the paper's figure axes.
    """
    samples = timeline.samples(t0_ns, t1_ns, step_ns)
    times = np.array([(t - t0_ns) / 1e6 for t, _ in samples])
    freqs = np.array([f for _, f in samples], dtype=np.int64)
    return times, freqs


def trace_to_ghz(freqs_mhz: np.ndarray) -> np.ndarray:
    """Convert an MHz trace to GHz for display."""
    return np.asarray(freqs_mhz, dtype=np.float64) / 1_000.0


def step_times_ms(times_ms: np.ndarray,
                  freqs_mhz: np.ndarray) -> list[tuple[float, int, int]]:
    """(time_ms, from_mhz, to_mhz) for each frequency change in a trace.

    Used to verify the ~10 ms adjustment cadence of Figures 5 and 6.
    """
    changes: list[tuple[float, int, int]] = []
    for i in range(1, len(freqs_mhz)):
        if freqs_mhz[i] != freqs_mhz[i - 1]:
            changes.append(
                (float(times_ms[i]), int(freqs_mhz[i - 1]),
                 int(freqs_mhz[i]))
            )
    return changes
