"""The unprivileged-process facade.

An :class:`Actor` is what the paper's threat model calls "an
unprivileged process or virtual machine" (Section 4.1): it owns an
address space, is pinned to one core, can build eviction lists from its
own allocations, time its own loads with ``rdtscp`` and — if the
platform offers them — use ``clflush`` and transactional memory.  It
can *not* read MSRs.

Timed loads advance simulated time by the fenced loop-iteration cost
(Listing 3's harness), which is what keeps the receiver's measurement
rate realistic: the loop issues roughly 15-20 LLC accesses per
microsecond, light enough that the measurement itself leaves the uncore
at its idle frequency (Section 4.2, "measurement noise").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cache.eviction import EvictionListBuilder, EvictionSet
from ..cache.hierarchy import Level
from ..cpu.activity import ActivityProfile, IDLE
from ..errors import PrerequisiteError
from ..mem.allocator import AddressSpace, SharedSegment

if TYPE_CHECKING:
    from .system import System


@dataclass(frozen=True)
class TimedLoad:
    """One timed access: where it hit and what ``rdtscp`` measured."""

    virtual: int
    level: Level
    slice_id: int | None
    hops: int
    latency_cycles: float
    time_ns: int


#: Profile the core carries while the actor runs its measurement loop.
#: The fences keep the LLC access density low — no uncore demand — and
#: most of the wait is serialisation, not memory stall, so the loop
#: neither raises the frequency nor vetoes its decay (Section 4.2).
MEASUREMENT_PROFILE = ActivityProfile(
    active=True, llc_rate_per_us=18.0, mean_hops=1.0, stall_ratio=0.20
)


class Actor:
    """An unprivileged process pinned to one core of one socket."""

    def __init__(self, system: "System", name: str, socket_id: int,
                 core_id: int, domain: int = 0) -> None:
        self.system = system
        self.name = name
        self.socket_id = socket_id
        self.core_id = core_id
        self.domain = domain
        self.socket = system.socket(socket_id)
        self.core = self.socket.core(core_id)
        self.core.claim(name)
        self.space: AddressSpace = system.create_address_space(
            name, numa_node=socket_id
        )
        self.slice_hash = system.domain_slice_hash(socket_id, domain)
        self.builder = EvictionListBuilder(
            self.space, self.socket.hierarchy, slice_hash=self.slice_hash
        )
        self._active_profile: ActivityProfile | None = None
        self._flow_id: int | None = None

    # -- lifecycle -----------------------------------------------------------

    def retire(self) -> None:
        """Release the core (end of experiment)."""
        self._sync_flow(IDLE, None)
        self.core.release(self.system.engine.now)

    def bulk_load(self, virtuals, *, advance_time: bool = True) -> int:
        """Un-timed loads over many addresses; returns the miss count.

        Used by occupancy-style channels that walk thousands of lines
        per bit: the cache model is exercised access by access, but the
        per-access latency sampling (which the walker would not record
        anyway) is skipped, and time advances once by the aggregate loop
        cost.  A "miss" is an access served past the LLC (DRAM).
        """
        hierarchy = self.socket.hierarchy
        space = self.space
        misses = 0
        for virtual in virtuals:
            outcome = hierarchy.load(
                self.core_id, space.translate(virtual),
                slice_hash=self.slice_hash,
            )
            if outcome.level is Level.DRAM:
                misses += 1
        if advance_time and virtuals:
            mean_lat = self.system.latency_model.mean_llc_cycles(
                1, self.socket.uncore_freq_mhz
            )
            per_access = mean_lat * 1_000.0 / self.core.freq_mhz
            self.system.engine.run_for(
                max(int(per_access * len(virtuals) * 0.4), 1)
            )
        return misses

    # -- activity ------------------------------------------------------------

    def set_profile(self, profile: ActivityProfile,
                    target_slice: int | None = None) -> None:
        """Expose a macroscopic activity profile on this actor's core.

        With ``target_slice`` set, the actor's LLC traffic is also
        registered as a mesh flow on the contention tracker, making it
        visible to interconnect-contention observers.
        """
        self._active_profile = profile
        self.core.set_profile(self.system.engine.now, profile)
        self._sync_flow(profile, target_slice)

    def go_idle(self) -> None:
        """Return the core to idle (the actor sleeps)."""
        self._active_profile = None
        self.core.set_profile(self.system.engine.now, IDLE)
        self._sync_flow(IDLE, None)

    def _sync_flow(self, profile: ActivityProfile,
                   target_slice: int | None) -> None:
        if self._flow_id is not None:
            self.socket.contention.remove_flow(self._flow_id)
            self._flow_id = None
        if profile.llc_rate_per_us <= 0 or target_slice is None:
            return
        route = self.socket.mesh.core_slice_route(self.core_id,
                                                  target_slice)
        if route:
            self._flow_id = self.socket.contention.add_flow(
                route, profile.llc_rate_per_us, domain=self.domain
            )

    # -- memory ----------------------------------------------------------------

    def allocate(self, size_bytes: int):
        """Allocate private memory in this actor's address space."""
        return self.space.allocate(size_bytes)

    def allocate_huge(self, size_bytes: int):
        """Allocate huge pages (2 MB physically contiguous).

        Not part of UF-variation's threat model (Section 4.1 explicitly
        drops the HugePages assumption prior channels make); provided
        for the baselines and for ablations.
        """
        return self.space.allocate_huge(
            size_bytes, self.system.config.huge_page_bytes
        )

    def share_segment(self, size_bytes: int) -> SharedSegment:
        """Create a segment other actors may map (needs shared memory)."""
        if not self.system.config.shared_memory_available:
            raise PrerequisiteError(
                "shared memory is disabled on this platform"
            )
        segment = self.space.create_shared(size_bytes)
        segment.owner_domain = self.domain
        return segment

    def map_segment(self, segment: SharedSegment):
        """Map another actor's shared segment (needs shared memory).

        Partitioned platforms forbid cross-domain sharing — page
        deduplication and shared mappings across security domains would
        defeat the partition (Section 4.4).
        """
        if not self.system.config.shared_memory_available:
            raise PrerequisiteError(
                "shared memory is disabled on this platform"
            )
        if (
            self.system.security.fine_partition
            and segment.owner_domain != self.domain
        ):
            raise PrerequisiteError(
                "cross-domain shared memory is forbidden under "
                "fine-grained partitioning"
            )
        return self.space.map_shared(segment, owner_node=self.socket_id)

    # -- eviction lists -----------------------------------------------------------

    def local_slice(self) -> int:
        """The LLC slice co-located with this actor's core tile.

        Under partitioning the local slice may belong to another domain;
        fall back to the nearest allowed slice.
        """
        allowed = self.slice_hash.allowed_slices
        if self.core_id in allowed:
            return self.core_id
        return min(allowed,
                   key=lambda s: self.socket.hops(self.core_id, s))

    def slice_at_distance(self, hops: int) -> int:
        """An allowed LLC slice exactly ``hops`` away (first by id)."""
        allowed = set(self.slice_hash.allowed_slices)
        for slice_id in self.socket.mesh.slices_at_distance(self.core_id,
                                                            hops):
            if slice_id in allowed:
                return slice_id
        raise PrerequisiteError(
            f"{self.name}: no allowed slice at distance {hops} from core "
            f"{self.core_id}"
        )

    def build_measurement_list(self, hops: int = 1,
                               count: int = 20) -> EvictionSet:
        """Listing 3's eviction list, targeting a slice ``hops`` away."""
        return self.builder.build_measurement_list(
            self.slice_at_distance(hops), count=count
        )

    # -- timed accesses ----------------------------------------------------------

    def _contention_flows(self, slice_id: int) -> float:
        route = self.socket.mesh.core_slice_route(self.core_id, slice_id)
        competing = self.socket.contention.route_contention(
            route, observer_domain=self.domain
        )
        unit = self.system.config.demand.traffic_loop_rate_per_us
        return competing / unit

    def timed_load(self, virtual: int, *, advance_time: bool = True,
                   fenced: bool = True) -> TimedLoad:
        """One ``rdtscp``-timed load, advancing simulated time."""
        physical = self.space.translate(virtual)
        outcome = self.socket.hierarchy.load(
            self.core_id, physical, slice_hash=self.slice_hash
        )
        slice_id = (
            outcome.slice_id
            if outcome.slice_id is not None
            else self.slice_hash.slice_of(physical >> 6)
        )
        hops = self.socket.hops(self.core_id, slice_id)
        flows = (
            self._contention_flows(slice_id) if outcome.reached_uncore
            else 0.0
        )
        latency = self.system.latency_model.sample_cycles(
            outcome.level, hops, self.socket.uncore_freq_mhz, flows
        )
        engine = self.system.engine
        record = TimedLoad(
            virtual=virtual,
            level=outcome.level,
            slice_id=outcome.slice_id,
            hops=hops,
            latency_cycles=latency,
            time_ns=engine.now,
        )
        if advance_time:
            duration = self.system.latency_model.loop_iteration_ns(
                latency if fenced else latency * 0.3,
                self.core.freq_mhz,
            )
            engine.run_for(max(int(duration), 1))
        return record

    def load_series(self, virtuals: list[int], *,
                    advance_time: bool = True) -> list[TimedLoad]:
        """Timed loads over a list of addresses, in order."""
        return [
            self.timed_load(v, advance_time=advance_time) for v in virtuals
        ]

    def warm_list(self, ev_set: EvictionSet, rounds: int = 3) -> None:
        """Bring an eviction list into its cycling steady state."""
        for _ in range(rounds):
            for virtual in ev_set.virtual_addresses:
                self.timed_load(virtual, advance_time=False)

    def measure_avg_llc_latency(self, ev_set: EvictionSet,
                                duration_ns: int) -> float:
        """The paper's ``measure_avg_LLC_latency`` (Algorithm 1).

        Cycles through the measurement list for ``duration_ns``,
        returning the mean latency of the accesses that were served by
        the LLC.  The core carries the measurement profile while the
        loop runs.
        """
        engine = self.system.engine
        deadline = engine.now + duration_ns
        previous = self._active_profile
        self.set_profile(MEASUREMENT_PROFILE)
        latencies: list[float] = []
        index = 0
        addresses = ev_set.virtual_addresses
        while engine.now < deadline:
            record = self.timed_load(addresses[index % len(addresses)])
            if record.level is Level.LLC:
                latencies.append(record.latency_cycles)
            index += 1
        if previous is not None:
            self.set_profile(previous)
        else:
            self.go_idle()
        if not latencies:
            return float("nan")
        return float(np.mean(latencies))

    def measure_window(self, ev_set: EvictionSet,
                       duration_ns: int) -> float:
        """Fast-path equivalent of :meth:`measure_avg_llc_latency`.

        The measurement list cycles in steady state (every access an LLC
        hit), so per-access simulation is redundant: between PMU
        evaluations the uncore frequency — and hence the latency
        distribution — is constant.  The window is split at PMU tick
        boundaries; each segment contributes the sufficient statistic of
        its sample batch (:meth:`LatencyModel.segment_llc_sum`), sized
        by the fenced iteration time.  Statistically identical to the
        per-access loop at a tiny fraction of the cost — and the batch
        backend replays the exact same per-segment draws, which is what
        makes the two backends bit-identical.
        """
        engine = self.system.engine
        model = self.system.latency_model
        deadline = engine.now + duration_ns
        previous = self._active_profile
        self.set_profile(MEASUREMENT_PROFILE)
        slice_id = ev_set.slice_id
        hops = self.socket.hops(self.core_id, slice_id)
        total = 0.0
        count = 0
        while engine.now < deadline:
            next_tick = self.socket.pmu.next_evaluation_ns()
            if next_tick is None:
                next_tick = deadline
            seg_end = min(deadline, max(next_tick, engine.now + 1))
            mhz = self.socket.uncore_freq_mhz
            flows = self._contention_flows(slice_id)
            mean_lat = model.mean_llc_cycles(hops, mhz)
            iter_ns = model.loop_iteration_ns(mean_lat, self.core.freq_mhz)
            n = max(int((seg_end - engine.now) / iter_ns), 1)
            total += model.segment_llc_sum(n, hops, mhz, flows)
            count += n
            engine.run_for(seg_end - engine.now)
        if previous is not None:
            self.set_profile(previous)
        else:
            self.go_idle()
        if count == 0:
            return float("nan")
        return total / count + model.window_bias()

    def probe_frequency_mhz(self, ev_set: EvictionSet,
                            samples: int = 16) -> float:
        """One quick unprivileged frequency estimate (Section 4.2).

        Times a short burst over the measurement list and inverts the
        latency curve.  Advances time only by the burst itself (~1 us),
        so a tracer can sample every few milliseconds without loading
        the uncore.
        """
        model = self.system.latency_model
        hops = self.socket.hops(self.core_id, ev_set.slice_id)
        mhz = self.socket.uncore_freq_mhz
        flows = self._contention_flows(ev_set.slice_id)
        burst = model.sample_many(samples, Level.LLC, hops, mhz, flows)
        mean_lat = float(burst.mean())
        iter_ns = model.loop_iteration_ns(mean_lat, self.core.freq_mhz)
        self.system.engine.run_for(max(int(iter_ns * samples), 1))
        return model.frequency_from_latency(mean_lat, hops)

    # -- privileged-instruction surfaces ----------------------------------------

    #: clflush cost in core cycles: a cached line pays the invalidate /
    #: write-back round trip, an uncached one returns quickly.  The gap
    #: is the Flush+Flush signal (Gruss et al.).
    CLFLUSH_CACHED_CYCLES = 135.0
    CLFLUSH_UNCACHED_CYCLES = 98.0

    def clflush(self, virtual: int) -> None:
        """Flush a line (requires the platform to expose clflush)."""
        self.timed_clflush(virtual)

    def timed_clflush(self, virtual: int) -> float:
        """Flush a line and return the measured flush latency in cycles."""
        if not self.system.config.clflush_available:
            raise PrerequisiteError("clflush is unavailable (disabled)")
        physical = self.space.translate(virtual)
        was_cached = self.socket.hierarchy.clflush(
            physical, slice_hash=self.slice_hash
        )
        base = (
            self.CLFLUSH_CACHED_CYCLES
            if was_cached
            else self.CLFLUSH_UNCACHED_CYCLES
        )
        noise = self.system.latency_model
        latency = base + float(
            noise.rng.normal(0.0, noise.config.noise_sigma_cycles * 2)
        )
        duration = self.system.latency_model.loop_iteration_ns(
            latency, self.core.freq_mhz
        )
        self.system.engine.run_for(max(int(duration), 1))
        return latency

    def begin_transaction(self, virtuals: list[int]) -> None:
        """Open a TSX transaction reading ``virtuals`` (Prime+Abort)."""
        if not self.system.config.tsx_available:
            raise PrerequisiteError("TSX is unavailable (disabled)")
        lines = frozenset(
            self.space.translate(v) >> 6 for v in virtuals
        )
        self.socket.hierarchy.begin_transaction(self.core_id, lines)

    def end_transaction(self) -> bool:
        """Close the transaction; True if it aborted."""
        if not self.system.config.tsx_available:
            raise PrerequisiteError("TSX is unavailable (disabled)")
        return self.socket.hierarchy.end_transaction(self.core_id)

    def __repr__(self) -> str:
        return (
            f"Actor({self.name!r}, socket={self.socket_id}, "
            f"core={self.core_id}, domain={self.domain})"
        )
