"""The full simulated system: engine + memory + sockets + security.

``System`` is the top-level object every experiment builds first.  It
owns the event engine, wires cross-socket UFS coupling (Figure 7),
applies the security configuration (the defense columns of Table 3) and
provides both the privileged observation path (MSR reads, Section 3)
and the unprivileged one (actors timing their own loads, Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PlatformConfig, default_platform_config
from ..cache.slice_hash import SliceHash
from ..engine import Engine
from ..errors import ConfigError
from ..mem.allocator import AddressSpace, PhysicalMemory
from ..power.energy import EnergyMeter
from ..rng import SeedSequenceNamer
from ..telemetry.collect import harvest_system
from ..telemetry.context import active_registry
from ..units import MS
from .actor import Actor
from .latency import LatencyModel
from .processor import Socket

#: Stagger between consecutive sockets' PMU evaluation phases.  Small
#: and positive so a follower socket observes the leader's fresh step
#: shortly after it happens, producing the one-period lag of Figure 7.
_PMU_STAGGER_NS = 500_000


@dataclass(frozen=True)
class SecurityConfig:
    """Defense toggles applied at system construction (Section 4.4).

    * ``randomize_llc`` — keyed pseudorandom LLC set mapping
      (Table 3 "Random. LLC").
    * ``fine_partition`` — LLC slices split between security domains and
      the interconnect time-multiplexed between them
      (Table 3 "Fine partition").
    * ``coarse_partition`` — domains confined to distinct sockets with a
      NUMA-strict allocation policy (Table 3 "Coarse partition").
    """

    randomize_llc: bool = False
    fine_partition: bool = False
    num_domains: int = 2
    coarse_partition: bool = False

    def validate(self) -> None:
        if self.num_domains < 1:
            raise ConfigError("need at least one security domain")


class System:
    """A running simulated platform."""

    def __init__(
        self,
        config: PlatformConfig | None = None,
        *,
        security: SecurityConfig | None = None,
        seed: int | None = None,
    ) -> None:
        self.config = config if config is not None else (
            default_platform_config()
        )
        self.config.validate()
        self.security = security if security is not None else (
            SecurityConfig()
        )
        self.security.validate()
        self.namer = SeedSequenceNamer(seed)
        self.engine = Engine()
        self.memory = PhysicalMemory(
            self.config.physical_memory_bytes,
            self.config.page_bytes,
            num_numa_nodes=self.config.num_sockets,
        )
        self.latency_model = LatencyModel(
            self.config.latency, self.namer.rng("latency-noise")
        )
        self.energy_meter = EnergyMeter(self.config.energy)
        self.sockets: list[Socket] = []
        for socket_config in self.config.sockets:
            socket_id = socket_config.socket_id
            remote = None
            if self.config.cross_socket_coupling and (
                self.config.num_sockets > 1
            ):
                remote = self._remote_frequency_fn(socket_id)
            key = None
            if self.security.randomize_llc:
                key = self.namer.seed_for(f"llc-random-key-{socket_id}")
            socket = Socket(
                socket_config,
                self.engine,
                ufs_config=self.config.ufs,
                demand_config=self.config.demand,
                cstate_config=self.config.cstates,
                turbo_config=self.config.turbo,
                current_config=self.config.current,
                clockmod_config=self.config.clockmod,
                pmu_phase_ns=(
                    self.config.ufs.period_ns
                    + socket_id * _PMU_STAGGER_NS
                ),
                remote_frequency=remote,
                coupling_lag_mhz=self.config.coupling_lag_mhz,
                randomize_llc_key=key,
            )
            if self.security.fine_partition:
                socket.contention.time_multiplexed = True
            self.sockets.append(socket)
        self._workloads: dict[str, object] = {}
        self._telemetry_collected = False

    def _remote_frequency_fn(self, socket_id: int):
        def remote_frequency() -> int:
            return max(
                socket.pmu.current_mhz
                for socket in self.sockets
                if socket.socket_id != socket_id
            )

        return remote_frequency

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self.engine.now

    def run_for(self, duration_ns: int) -> None:
        """Advance simulated time by ``duration_ns``."""
        self.engine.run_for(duration_ns)

    def run_ms(self, duration_ms: float) -> None:
        """Advance simulated time by ``duration_ms`` milliseconds."""
        self.engine.run_for(round(duration_ms * MS))

    # -- topology accessors ------------------------------------------------------

    def socket(self, socket_id: int) -> Socket:
        if not 0 <= socket_id < len(self.sockets):
            raise ConfigError(f"no such socket {socket_id}")
        return self.sockets[socket_id]

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    def uncore_frequency_mhz(self, socket_id: int = 0) -> int:
        """Privileged shortcut to the socket's current uncore frequency."""
        return self.socket(socket_id).pmu.current_mhz

    # -- security-domain plumbing -------------------------------------------------

    def domain_slice_hash(self, socket_id: int, domain: int) -> SliceHash:
        """The slice hash a domain's accesses route through.

        Without partitioning every domain sees the full hash.  With the
        fine-grained partition, slices are split evenly across domains.
        """
        full = self.socket(socket_id).hierarchy.slice_hash
        if not self.security.fine_partition:
            return full
        num_domains = self.security.num_domains
        if not 0 <= domain < num_domains:
            raise ConfigError(f"no such security domain {domain}")
        allowed = tuple(
            slice_id
            for slice_id in range(full.num_slices)
            if slice_id % num_domains == domain
        )
        return full.restricted(allowed)

    # -- processes ---------------------------------------------------------------

    def create_address_space(self, name: str,
                             numa_node: int = 0) -> AddressSpace:
        """A new process address space (NUMA-strict under coarse
        partitioning)."""
        return AddressSpace(
            name,
            self.memory,
            numa_node=numa_node,
            numa_strict=self.security.coarse_partition,
        )

    def create_actor(self, name: str, socket_id: int, core_id: int,
                     domain: int = 0) -> Actor:
        """An unprivileged process pinned to a core (Section 4.1)."""
        return Actor(self, name, socket_id, core_id, domain=domain)

    def launch(self, workload, socket_id: int, core_id: int) -> None:
        """Pin a workload to a core and start it."""
        workload.attach(self, socket_id, core_id)
        workload.start()
        self._workloads[workload.name] = workload

    def terminate(self, workload) -> None:
        """Stop a workload and release its core."""
        workload.stop()
        workload.detach()
        self._workloads.pop(workload.name, None)

    # -- MSR access (privileged) ---------------------------------------------------

    def read_msr(self, socket_id: int, address: int, *,
                 privileged: bool = False) -> int:
        """rdmsr on a socket; raises PrivilegeError when unprivileged."""
        return self.socket(socket_id).msr.read(address,
                                               privileged=privileged)

    def write_msr(self, socket_id: int, address: int, value: int, *,
                  privileged: bool = False) -> None:
        """wrmsr on a socket; raises PrivilegeError when unprivileged."""
        self.socket(socket_id).msr.write(address, value,
                                         privileged=privileged)

    def measure_frequency_via_msr(self, socket_id: int,
                                  window_ns: int = 200_000) -> float:
        """Section 3's privileged frequency probe.

        Reads the fixed uclk counter, lets ``window_ns`` elapse, reads
        again; the tick delta over the wall-clock window is the mean
        uncore frequency in MHz.
        """
        from ..cpu.msr import MSR_UCLK_FIXED_CTR

        first = self.read_msr(socket_id, MSR_UCLK_FIXED_CTR,
                              privileged=True)
        self.run_for(window_ns)
        second = self.read_msr(socket_id, MSR_UCLK_FIXED_CTR,
                               privileged=True)
        return (second - first) * 1_000.0 / window_ns

    # -- shutdown -----------------------------------------------------------------

    def stop(self) -> None:
        """Stop all periodic machinery (end of experiment).

        If a telemetry registry is active, the platform's lifetime
        counters are harvested into it exactly once — harvesting is
        read-only, so results are unchanged with telemetry on or off.
        """
        for workload in list(self._workloads.values()):
            self.terminate(workload)
        for socket in self.sockets:
            socket.pmu.stop()
            if socket.modulation_active:
                socket.modulation.stop()
        registry = active_registry()
        if registry is not None and not self._telemetry_collected:
            self._telemetry_collected = True
            harvest_system(self, registry)
