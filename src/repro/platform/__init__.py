"""Platform assembly: sockets, the full system, latency model, actors.

``System`` wires every substrate together: the event engine, physical
memory, per-socket cores + caches + mesh + UFS PMU + MSRs, and the
security configuration (defense toggles of Table 3).  ``Actor`` is the
facade an unprivileged process uses: its own address space, eviction
lists, timed loads and (where available) clflush/TSX.
"""

from .latency import LatencyModel
from .processor import Socket
from .actor import Actor, TimedLoad
from .system import SecurityConfig, System
from .tracing import frequency_trace, trace_to_ghz

__all__ = [
    "Actor",
    "LatencyModel",
    "SecurityConfig",
    "Socket",
    "System",
    "TimedLoad",
    "frequency_trace",
    "trace_to_ghz",
]
