"""The access-latency model: the receiver's only window on the uncore.

Figure 8 of the paper shows that the LLC access latency measured in TSC
cycles falls as the uncore frequency rises, for every hop distance.
The model decomposes a timed load into:

* a core-side portion, clocked by the (fixed) core clock;
* an uncore-side portion — slice pipeline plus mesh traversal — clocked
  by the uncore, hence scaling as ``1 / f_uncore``;
* queueing delay from competing interconnect flows (the mesh/ring
  contention channels' signal);
* measurement noise with a tight IQR and a right tail, matching the
  quantile whiskers of Figure 8.

Anchor points from Figure 9 (1-hop: 79 cycles at 1.5 GHz, 71 at
1.8 GHz, 63 at 2.2 GHz) fix the coefficients; see
:class:`repro.config.LatencyModelConfig`.
"""

from __future__ import annotations

import math

import numpy as np

from ..cache.hierarchy import Level
from ..config import LatencyModelConfig


class LatencyModel:
    """Samples access latencies in TSC cycles."""

    #: Extra uncore cycles for a directory-served cache-to-cache transfer.
    SNOOP_EXTRA_CYCLES = 35.0

    def __init__(self, config: LatencyModelConfig,
                 rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self.rng = rng

    # -- deterministic components -----------------------------------------

    def mean_llc_cycles(self, hops: int, uncore_mhz: int) -> float:
        """Noise-free LLC-hit latency at a given hop count and frequency."""
        f_ghz = uncore_mhz / 1_000.0
        uncore_part = self.config.slice_cycles + self.config.hop_cycles * hops
        return self.config.core_cycles + uncore_part / f_ghz

    def mean_cycles(self, level: Level, hops: int, uncore_mhz: int,
                    contention_flows: float = 0.0) -> float:
        """Noise-free latency for an access served at ``level``."""
        if level is Level.L1:
            return self.config.l1_hit_cycles
        if level is Level.L2:
            return self.config.l2_hit_cycles
        f_ghz = uncore_mhz / 1_000.0
        base = self.mean_llc_cycles(hops, uncore_mhz)
        base += (
            self.config.contention_cycles_per_flow * contention_flows / f_ghz
        )
        if level is Level.REMOTE_CACHE:
            return base + self.SNOOP_EXTRA_CYCLES / f_ghz
        if level is Level.DRAM:
            return base + self.config.dram_extra_cycles
        return base

    # -- sampling ------------------------------------------------------------

    def _noise(self, count: int) -> np.ndarray:
        """Measurement jitter: tight Gaussian core plus a sparse tail."""
        noise = self.rng.normal(0.0, self.config.noise_sigma_cycles, count)
        tail_mask = self.rng.random(count) < self.config.noise_tail_prob
        tail = self.rng.exponential(self.config.noise_tail_cycles, count)
        return noise + tail_mask * tail

    def sample_cycles(self, level: Level, hops: int, uncore_mhz: int,
                      contention_flows: float = 0.0) -> float:
        """One noisy timed load."""
        mean = self.mean_cycles(level, hops, uncore_mhz, contention_flows)
        return float(max(mean + self._noise(1)[0],
                         self.config.l1_hit_cycles))

    def sample_many(self, count: int, level: Level, hops: int,
                    uncore_mhz: int,
                    contention_flows: float = 0.0) -> np.ndarray:
        """A batch of noisy timed loads under identical conditions."""
        mean = self.mean_cycles(level, hops, uncore_mhz, contention_flows)
        samples = mean + self._noise(count)
        return np.maximum(samples, self.config.l1_hit_cycles)

    def segment_llc_sum(self, count: int, hops: int, uncore_mhz: int,
                        contention_flows: float = 0.0) -> float:
        """Sum of ``count`` noisy LLC timed loads as one statistic.

        A measurement-window segment only ever contributes its *sum* to
        the windowed average, so the per-sample draws are replaced by
        their sufficient statistic: one Gaussian for the accumulated
        jitter (variance scales with ``count``), a binomial for how many
        samples landed in the right tail and a gamma for the total tail
        mass (a sum of ``k`` exponentials is Gamma(``k``)).  Three RNG
        draws instead of ``count``, from the same stream — the DES
        receiver and the batch backend both call this, which is what
        makes their windowed averages bit-identical.

        The per-sample floor at the L1 hit latency is dropped: it sits
        ~40 sigma below any LLC mean, so the clip probability is below
        1e-300 and the statistic is exact in practice.
        """
        mean = self.mean_cycles(Level.LLC, hops, uncore_mhz,
                                contention_flows)
        sigma = self.config.noise_sigma_cycles * math.sqrt(count)
        total = count * mean + float(self.rng.normal(0.0, sigma))
        tails = int(self.rng.binomial(count, self.config.noise_tail_prob))
        if tails:
            total += float(
                self.rng.gamma(tails, self.config.noise_tail_cycles)
            )
        return total

    def window_bias(self) -> float:
        """Systemic bias affecting one whole measurement window.

        Sample means over a window do not converge to the true mean on
        real hardware — interrupts, prefetcher state and TLB pressure
        shift entire windows by a fraction of a cycle.  Modelled as one
        Gaussian draw per window.
        """
        return float(
            self.rng.normal(0.0, self.config.window_jitter_cycles)
        )

    # -- inversion -------------------------------------------------------------

    def frequency_from_latency(self, latency_cycles: float,
                               hops: int) -> float:
        """Invert the LLC-hit curve: estimated uncore frequency in MHz.

        This is the receiver's unprivileged frequency probe
        (Section 4.2): the average measured latency pins down the uncore
        frequency because the curve is strictly monotone.
        """
        uncore_part = self.config.slice_cycles + self.config.hop_cycles * hops
        core_part = latency_cycles - self.config.core_cycles
        if core_part <= 0:
            return float("inf")
        return uncore_part / core_part * 1_000.0

    def loop_iteration_ns(self, latency_cycles: float,
                          core_mhz: int) -> float:
        """Wall time of one fenced measurement-loop iteration (Listing 3).

        The fences and timestamp reads serialise the loop, so each
        iteration costs the access latency plus a fixed harness overhead,
        all in core cycles.
        """
        cycles = latency_cycles + self.config.fence_overhead_cycles
        return cycles * 1_000.0 / core_mhz
