"""One processor package (socket): cores, uncore and its controller.

A socket owns its cores, mesh, cache hierarchy, contention tracker,
package C-state manager, MSR file and UFS PMU.  The MSR file is wired
to the PMU both ways: reads of the uclk counter reflect the frequency
timeline, and writes to ``UNCORE_RATIO_LIMIT`` re-limit the PMU — the
exact control surface the paper's countermeasures use (Section 6.1).
"""

from __future__ import annotations

from collections.abc import Callable

from ..cache.hierarchy import CacheHierarchy
from ..cache.slice_hash import RandomizedIndexer, SliceHash
from ..config import (
    ClockModulationConfig,
    CStateConfig,
    CurrentLimitConfig,
    DemandModelConfig,
    SocketConfig,
    TurboConfig,
    UfsConfig,
)
from ..cpu.core import Core
from ..cpu.msr import (
    MSR_UCLK_FIXED_CTR,
    MSR_UNCORE_RATIO_LIMIT,
    MsrFile,
    decode_uncore_ratio_limit,
    encode_uncore_ratio_limit,
)
from ..engine import Engine
from ..noc.contention import ContentionTracker
from ..noc.topology import MeshTopology
from ..power.cstates import PackageCStateManager
from ..power.modulation import ModulationUnit
from ..power.ufs import UfsPmu


class Socket:
    """A complete processor package on the simulated system."""

    def __init__(
        self,
        config: SocketConfig,
        engine: Engine,
        *,
        ufs_config: UfsConfig,
        demand_config: DemandModelConfig,
        cstate_config: CStateConfig,
        turbo_config: TurboConfig | None = None,
        current_config: CurrentLimitConfig | None = None,
        clockmod_config: ClockModulationConfig | None = None,
        pmu_phase_ns: int = 0,
        remote_frequency: Callable[[], int] | None = None,
        coupling_lag_mhz: int = 100,
        randomize_llc_key: int | None = None,
    ) -> None:
        self.config = config
        self.engine = engine
        self.socket_id = config.socket_id
        self.mesh = MeshTopology(config)
        self.cores = [
            Core(core_id, config.socket_id, tile, config.base_freq_mhz)
            for core_id, tile in enumerate(config.core_tiles)
        ]

        indexer_factory = None
        if randomize_llc_key is not None:
            num_sets = config.llc_slice_config.num_sets
            key = randomize_llc_key

            def indexer_factory(slice_id: int,
                                _sets=num_sets, _key=key):
                return RandomizedIndexer(_sets, _key ^ (slice_id * 0x9E37))

        self.hierarchy = CacheHierarchy(
            config, llc_indexer_factory=indexer_factory
        )
        self.contention = ContentionTracker()
        self.pc_states = PackageCStateManager(self.cores, cstate_config)
        self._turbo_config = turbo_config or TurboConfig()
        self._current_config = current_config or CurrentLimitConfig()
        self._clockmod_config = clockmod_config or ClockModulationConfig()
        self._modulation: ModulationUnit | None = None
        self.pmu = UfsPmu(
            socket_id=config.socket_id,
            engine=engine,
            cores=self.cores,
            ufs_config=ufs_config,
            demand_config=demand_config,
            phase_ns=pmu_phase_ns,
            remote_frequency=remote_frequency,
            coupling_lag_mhz=coupling_lag_mhz,
        )
        self.msr = MsrFile(config.socket_id)
        self.msr.register_provider(
            MSR_UCLK_FIXED_CTR,
            lambda: self.pmu.timeline.uclk_ticks(self.engine.now),
        )
        self.msr.add_write_listener(
            MSR_UNCORE_RATIO_LIMIT, self._on_ratio_limit_write
        )
        # Seed the readable value with the configured window.
        self.msr.write(
            MSR_UNCORE_RATIO_LIMIT,
            encode_uncore_ratio_limit(ufs_config.min_freq_mhz,
                                      ufs_config.max_freq_mhz),
            privileged=True,
        )

    def _on_ratio_limit_write(self, value: int) -> None:
        min_mhz, max_mhz = decode_uncore_ratio_limit(value)
        self.pmu.set_limits(min_mhz, max_mhz)

    # -- convenience --------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def uncore_freq_mhz(self) -> int:
        """Current uncore frequency (privileged observer's view)."""
        return self.pmu.current_mhz

    @property
    def modulation(self) -> ModulationUnit:
        """The socket's turbo/current/duty modulation bundle.

        Created on first access: a run that never touches the turbo,
        current-limit or clock-modulation channels schedules no
        modulation ticks, keeping default event streams (and the UFS
        golden traces) unchanged.
        """
        if self._modulation is None:
            self._modulation = ModulationUnit(
                socket_id=self.socket_id,
                engine=self.engine,
                cores=self.cores,
                turbo_config=self._turbo_config,
                current_config=self._current_config,
                clockmod_config=self._clockmod_config,
                base_freq_mhz=self.config.base_freq_mhz,
            )
        return self._modulation

    @property
    def modulation_active(self) -> bool:
        """Whether the lazy modulation bundle has been created."""
        return self._modulation is not None

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def slice_hash(self) -> SliceHash:
        return self.hierarchy.slice_hash

    def hops(self, core_id: int, slice_id: int) -> int:
        """Mesh distance between a core and an LLC slice."""
        return self.mesh.hops(core_id, slice_id)

    def idle_cores(self, time_ns: int) -> list[int]:
        """Core ids currently unowned and idle."""
        return [
            core.core_id
            for core in self.cores
            if core.owner is None and not core.is_active(time_ns)
        ]
