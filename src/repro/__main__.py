"""``python -m repro`` — the experiment command-line front end."""

import sys

from .cli import main

sys.exit(main())
