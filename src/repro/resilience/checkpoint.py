"""Atomic checkpoint files for resumable long-running experiments.

A :class:`Checkpoint` records each completed trial's result under its
trial *label* as it lands, flushing to disk with the same temp-file +
``os.replace`` discipline the trace store uses — an interrupted flush
can never tear the file, only strand a temp that the next flush
replaces.

The file is keyed by :func:`checkpoint_key`, which is literally
:meth:`repro.trace.store.TraceStore.key` — a digest of (effective
platform config, experiment name, canonical params, seed).  A resumed
run therefore only reuses results when it would have produced the exact
same ones, and a checkpoint written under a different shape (other
intervals, other bits, other platform) is ignored rather than merged.

Results are pickled and wrapped with a sha256 digest per record, so
resumed values round-trip bit-identically (pickle preserves float64
payloads exactly) and a damaged record is skipped — worst case the
trial is re-run, never resumed wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any

from ..errors import ConfigError
from ..telemetry.context import active_registry

__all__ = ["Checkpoint", "checkpoint_key", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


def _count(name: str, amount: int | float = 1) -> None:
    registry = active_registry()
    if registry is not None:
        registry.inc(f"runner.checkpoint.{name}", amount)


def checkpoint_key(experiment: str, *, platform=None,
                   params: dict | None = None,
                   seed: int | None = None,
                   backend: str | None = None) -> str:
    """The trace store's content-address recipe, reused verbatim.

    ``backend`` keeps checkpoints written by different simulators
    apart; ``None``/``"des"`` preserve every pre-backend key.
    """
    # Imported lazily: the trace store imports the resilience package
    # (for its circuit breaker), so a module-level import here would
    # be a cycle.
    from ..trace.store import TraceStore

    return TraceStore.key(experiment, platform=platform, params=params,
                          seed=seed, backend=backend)


class Checkpoint:
    """Label-addressed completed-trial results, atomically persisted.

    ``every`` controls flush cadence: 1 (the default) flushes after
    every recorded result — an interrupt loses nothing; larger values
    amortise the write for sweeps with many cheap trials.
    """

    def __init__(self, path, *, key: str = "", every: int = 1) -> None:
        if every < 1:
            raise ConfigError(f"every must be >= 1, got {every}")
        self.path = Path(path)
        self.key = key
        self.every = every
        self._completed: dict[str, Any] = {}
        self._dirty = 0

    @classmethod
    def for_experiment(cls, directory, experiment: str, *, platform=None,
                       params: dict | None = None, seed: int | None = None,
                       every: int = 1,
                       backend: str | None = None) -> "Checkpoint":
        """The canonical path: ``<dir>/<experiment>-<key>.ckpt.json``."""
        key = checkpoint_key(experiment, platform=platform, params=params,
                             seed=seed, backend=backend)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / f"{experiment}-{key}.ckpt.json", key=key,
                   every=every)

    # -- persistence --------------------------------------------------

    def load(self) -> dict[str, Any]:
        """Read the file, salvage every intact record, return them.

        Tolerates a missing file (fresh start), a torn file (fresh
        start, counted as ``runner.checkpoint.invalid``) and individual
        damaged records (skipped, counted) — resuming from a damaged
        checkpoint can cost re-runs but never correctness.
        """
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return dict(self._completed)
        except (json.JSONDecodeError, UnicodeDecodeError):
            _count("invalid")
            return dict(self._completed)
        if (not isinstance(payload, dict)
                or payload.get("version") != CHECKPOINT_VERSION
                or payload.get("key") != self.key):
            _count("invalid")
            return dict(self._completed)
        for label, record in payload.get("completed", {}).items():
            if not isinstance(record, dict):
                _count("corrupt_records")
                continue
            try:
                blob = bytes.fromhex(record.get("data", ""))
            except ValueError:
                _count("corrupt_records")
                continue
            if hashlib.sha256(blob).hexdigest() != record.get("sha256"):
                _count("corrupt_records")
                continue
            try:
                self._completed[label] = pickle.loads(blob)
            except Exception:  # noqa: BLE001 - any damage means re-run
                _count("corrupt_records")
                continue
        return dict(self._completed)

    def record(self, label: str, result: Any) -> None:
        """Store one completed result; flush if the cadence says so."""
        self._completed[str(label)] = result
        self._dirty += 1
        _count("records")
        if self._dirty >= self.every:
            self.flush()

    def flush(self) -> None:
        """Publish the current state atomically (temp + ``os.replace``)."""
        if not self._dirty:
            return
        completed = {}
        for label in sorted(self._completed):
            blob = pickle.dumps(self._completed[label], protocol=4)
            completed[label] = {
                "sha256": hashlib.sha256(blob).hexdigest(),
                "data": blob.hex(),
            }
        payload = json.dumps(
            {"version": CHECKPOINT_VERSION, "key": self.key,
             "completed": completed},
            sort_keys=True,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_suffix(self.path.suffix + ".tmp")
        temp.write_text(payload, encoding="utf-8")
        os.replace(temp, self.path)
        self._dirty = 0
        _count("flushes")

    def discard(self) -> None:
        """Delete the file and forget everything (a completed run)."""
        self.path.unlink(missing_ok=True)
        self._completed.clear()
        self._dirty = 0

    def __len__(self) -> int:
        return len(self._completed)
