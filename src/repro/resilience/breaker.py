"""A deterministic circuit breaker for degradable subsystems.

Classic closed/open/half-open state machine with one twist: the
"cooldown" is measured in **denied calls**, not wall-clock seconds.
Everything else in this codebase is a pure function of its inputs;
a time-based breaker would make cache behaviour depend on how fast
the host happens to be.  Counting calls keeps the whole fault story
replayable — the same sequence of operations always walks the same
state path.

States:

* ``closed`` — normal operation; consecutive failures are counted and
  ``failure_threshold`` of them in a row trips the breaker open.
* ``open`` — every call is refused (the caller degrades to its
  fallback, e.g. the trace store simulates instead of caching).  After
  ``cooldown`` refusals the breaker half-opens.
* ``half_open`` — exactly one probe call is let through.  Success
  closes the breaker; failure re-opens it and the cooldown restarts.

Transitions emit ``<name>.breaker_open`` / ``breaker_half_open`` /
``breaker_closed`` counters when a telemetry registry is active.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..telemetry.context import active_registry

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures; probe
    again after ``cooldown`` denied calls.
    """

    def __init__(self, *, failure_threshold: int = 3, cooldown: int = 8,
                 name: str | None = None) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 1:
            raise ConfigError(f"cooldown must be >= 1, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = name
        self.state = CLOSED
        self._consecutive_failures = 0
        self._denied_while_open = 0
        self._probe_outstanding = False

    def _emit(self, event: str) -> None:
        if self.name is None:
            return
        registry = active_registry()
        if registry is not None:
            registry.inc(f"{self.name}.breaker_{event}")

    def _trip_open(self) -> None:
        self.state = OPEN
        self._denied_while_open = 0
        self._probe_outstanding = False
        self._emit("open")

    def allow(self) -> bool:
        """Whether the protected operation may run right now.

        While open, the ``cooldown``-th refused call is converted into
        the half-open probe and allowed through; while half-open, only
        that single outstanding probe runs.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            self._denied_while_open += 1
            if self._denied_while_open >= self.cooldown:
                self.state = HALF_OPEN
                self._probe_outstanding = True
                self._emit("half_open")
                return True
            return False
        # HALF_OPEN: one probe at a time.
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def allow_write(self) -> bool:
        """Side-effecting writes are refused only while fully open.

        A half-open breaker lets writes through: the probe read needs
        fresh data to land on, and a wasted write is cheaper than a
        probe that can never succeed.
        """
        return self.state != OPEN

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probe_outstanding = False
        if self.state != CLOSED:
            self.state = CLOSED
            self._emit("closed")

    def record_failure(self) -> None:
        self._probe_outstanding = False
        if self.state == HALF_OPEN:
            self._trip_open()
            return
        self._consecutive_failures += 1
        if (self.state == CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._trip_open()
