"""The chaos matrix: inject every fault, prove every containment.

Each check in :data:`CHAOS_FAULTS` injects one fault class from
:mod:`repro.validate.faults` (or drives one live failure mode) against
the resilience mechanism built to contain it, end to end:

====================== ==============================================
fault                  mechanism under test
====================== ==============================================
crashing-trial         retrying runner (``on_error="retry"``)
worker-death           pool rebuild after ``BrokenProcessPool``
interrupted-sweep      checkpoint/resume, bit-identical results
flipped-crc            trace-store quarantine + rewarm
torn-index             trace-store index healing
half-written-temp      atomic publish (temp + ``os.replace``)
breaker-storm          corruption circuit breaker, full state cycle
arq-stress             adaptive interval escalation under stress
remote-timeout-storm   remote breaker + write-through cache degradation
replica-loss           quorum reads + read repair after losing a replica
torn-remote-put        digest rejection of torn replica objects + repair
rebalance-crash-resume checkpointed shard migration, kill and resume
====================== ==============================================

A check returns a :class:`ChaosOutcome`; ``contained=False`` means the
mechanism let the fault through — the ``repro chaos`` CLI turns that
into a non-zero exit, which is the CI chaos gate.  Checks are
deterministic given ``(seed, workers)``: the faults are planted, not
random.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..rng import child_rng
from ..telemetry.context import using
from ..telemetry.registry import MetricsRegistry
from .arq import ArqPolicy, adaptive_under_stress
from .retry import RetryPolicy

__all__ = ["ChaosOutcome", "run_chaos", "CHAOS_FAULTS"]

CHAOS_FAULTS: tuple[str, ...] = (
    "crashing-trial",
    "worker-death",
    "interrupted-sweep",
    "flipped-crc",
    "torn-index",
    "half-written-temp",
    "breaker-storm",
    "arq-stress",
    "remote-timeout-storm",
    "replica-loss",
    "torn-remote-put",
    "rebalance-crash-resume",
)


@dataclass(frozen=True)
class ChaosOutcome:
    """One injected fault and whether its mechanism contained it."""

    fault: str
    mechanism: str
    contained: bool
    detail: str


def _echo(value=None):
    """Module-level (picklable) healthy trial body."""
    return value


def _records(seed: int, count: int = 3):
    from ..sidechannel.tracer import TraceRecord

    rng = child_rng(seed, "chaos-corpus")
    out = []
    for label in range(count):
        n = int(rng.integers(3, 7))
        out.append(TraceRecord(
            label=label,
            times_ms=np.cumsum(rng.uniform(0.1, 2.0, size=n)),
            freqs_mhz=rng.choice([1200.0, 1500.0, 2400.0], size=n),
        ))
    return out


def _counters(registry: MetricsRegistry) -> dict:
    return registry.deterministic_snapshot().get("counters", {})


def _check_crashing_trial(workdir: Path, *, seed: int,
                          workers: int) -> ChaosOutcome:
    from ..engine.parallel import Trial, run_trials
    from ..validate.faults import flaky_trial

    del seed, workers  # inline is enough: retry semantics are identical
    trials = [
        Trial(_echo, dict(value=0), label="t0"),
        Trial(flaky_trial, dict(sentinel=str(workdir / "sentinel"),
                                value=1), label="t1"),
        Trial(_echo, dict(value=2), label="t2"),
    ]
    registry = MetricsRegistry()
    with using(registry):
        results = run_trials(
            trials, workers=1, on_error="retry",
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
        )
    counters = _counters(registry)
    retries = counters.get("runner.retries", 0)
    contained = results == [0, 1, 2] and retries >= 1
    return ChaosOutcome(
        fault="crashing-trial",
        mechanism="retrying runner",
        contained=contained,
        detail=(f"retried {retries}x, results {results}"
                if contained else f"results {results}, "
                f"retries {retries}"),
    )


def _check_worker_death(workdir: Path, *, seed: int,
                        workers: int) -> ChaosOutcome:
    from ..engine.parallel import Trial, run_trials
    from ..validate.faults import worker_killing_trial

    del seed
    pool_size = max(2, workers)  # os._exit inline would kill *us*
    trials = [
        Trial(_echo, dict(value=0), label="t0"),
        Trial(worker_killing_trial,
              dict(sentinel=str(workdir / "sentinel")), label="t1"),
        Trial(_echo, dict(value=2), label="t2"),
    ]
    registry = MetricsRegistry()
    with using(registry):
        results = run_trials(
            trials, workers=pool_size, on_error="retry",
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
        )
    counters = _counters(registry)
    rebuilds = counters.get("runner.pool_rebuilds", 0)
    contained = results == [0, "survived", 2] and rebuilds >= 1
    return ChaosOutcome(
        fault="worker-death",
        mechanism="pool rebuild + resubmit",
        contained=contained,
        detail=(f"pool rebuilt {rebuilds}x, all results intact"
                if contained else f"results {results}, "
                f"rebuilds {rebuilds}"),
    )


def _check_interrupted_sweep(workdir: Path, *, seed: int,
                             workers: int) -> ChaosOutcome:
    from ..core import evaluation

    del workers  # serial: the monkeypatched crash must run in-process
    shape = dict(intervals_ms=(28.0, 24.0), bits=8, seed=seed)
    clean = evaluation.capacity_sweep(**shape)
    sentinel = workdir / "crash-once"
    original = evaluation.measure_capacity

    def crash_once(**kwargs):
        if kwargs.get("interval_ms") == 24.0 and not sentinel.exists():
            sentinel.write_text("tripped", encoding="utf-8")
            raise RuntimeError("injected mid-sweep crash")
        return original(**kwargs)

    evaluation.measure_capacity = crash_once
    interrupted = False
    try:
        try:
            evaluation.capacity_sweep(**shape, checkpoint_dir=workdir)
        except RuntimeError:
            interrupted = True
    finally:
        evaluation.measure_capacity = original
    registry = MetricsRegistry()
    with using(registry):
        resumed = evaluation.capacity_sweep(**shape,
                                            checkpoint_dir=workdir)
    skipped = _counters(registry).get("runner.checkpoint.skipped", 0)
    contained = (interrupted and skipped >= 1
                 and resumed.points == clean.points)
    return ChaosOutcome(
        fault="interrupted-sweep",
        mechanism="checkpoint/resume",
        contained=contained,
        detail=(f"resumed past {skipped} checkpointed points, "
                "bit-identical to the clean run"
                if contained else
                f"interrupted={interrupted} skipped={skipped} "
                f"identical={resumed.points == clean.points}"),
    )


def _check_flipped_crc(workdir: Path, *, seed: int,
                       workers: int) -> ChaosOutcome:
    from ..trace.store import TraceStore
    from ..validate.faults import flip_crc_bit

    del workers
    store = TraceStore(workdir / "store")
    key = TraceStore.key("chaos-crc", seed=seed)
    registry = MetricsRegistry()
    with using(registry):
        store.put(key, _records(seed), experiment="chaos-crc")
        flip_crc_bit(store, key)
        miss = store.fetch(key)
        store.put(key, _records(seed), experiment="chaos-crc")
        rewarmed = store.fetch(key)
    counters = _counters(registry)
    contained = (miss is None and rewarmed is not None
                 and len(rewarmed[1]) == 3
                 and counters.get("trace.store.quarantined", 0) >= 1)
    return ChaosOutcome(
        fault="flipped-crc",
        mechanism="quarantine + rewarm",
        contained=contained,
        detail=("corrupt blob quarantined, miss reported, rewarm served"
                if contained else f"miss={miss is None} "
                f"rewarmed={rewarmed is not None}"),
    )


def _check_torn_index(workdir: Path, *, seed: int,
                      workers: int) -> ChaosOutcome:
    from ..trace.store import TraceStore
    from ..validate.faults import truncate_index_entry

    del workers
    store = TraceStore(workdir / "store")
    key = TraceStore.key("chaos-torn", seed=seed)
    store.put(key, _records(seed), experiment="chaos-torn")
    truncate_index_entry(store, key)
    registry = MetricsRegistry()
    with using(registry):
        _, records = store.load(key)
    healed = store._read_entry(key)
    rebuilt = _counters(registry).get("trace.store.index_rebuilt", 0)
    contained = (len(records) == 3 and healed is not None
                 and healed.records == 3 and rebuilt >= 1)
    return ChaosOutcome(
        fault="torn-index",
        mechanism="index rebuild from blob",
        contained=contained,
        detail=("entry rebuilt from surviving blob, data served"
                if contained else f"records={len(records)} "
                f"healed={healed is not None}"),
    )


def _check_half_written_temp(workdir: Path, *, seed: int,
                             workers: int) -> ChaosOutcome:
    from ..trace.store import TraceStore
    from ..validate.faults import leave_half_written_temp

    del workers
    store = TraceStore(workdir / "store")
    key = TraceStore.key("chaos-temp", seed=seed)
    store.put(key, _records(seed), experiment="chaos-temp")
    temp = leave_half_written_temp(store, key)
    served = store.fetch(key)
    store.put(key, _records(seed), experiment="chaos-temp")
    contained = (served is not None and not temp.exists()
                 and store.verify().clean)
    return ChaosOutcome(
        fault="half-written-temp",
        mechanism="atomic publish (temp + os.replace)",
        contained=contained,
        detail=("stranded temp invisible to reads, replaced by next put"
                if contained else f"served={served is not None} "
                f"temp_gone={not temp.exists()}"),
    )


def _check_breaker_storm(workdir: Path, *, seed: int,
                         workers: int) -> ChaosOutcome:
    from ..trace.store import TraceStore
    from ..validate.faults import flip_crc_bit

    del workers
    store = TraceStore(workdir / "store", breaker_threshold=3,
                       breaker_cooldown=2)
    key = TraceStore.key("chaos-storm", seed=seed)
    registry = MetricsRegistry()
    with using(registry):
        # Three corrupt fetches in a row trip the breaker open.
        for _ in range(3):
            store.put(key, _records(seed), experiment="chaos-storm")
            flip_crc_bit(store, key)
            store.fetch(key)
        dropped_put = not store.contains(key)
        store.put(key, _records(seed), experiment="chaos-storm")
        dropped_put = dropped_put and not store.contains(key)
        # Cooldown: one refused fetch, then the probe (a clean miss —
        # the corrupt blob is quarantined) closes the breaker again.
        probe_results = [store.fetch(key), store.fetch(key)]
        store.put(key, _records(seed), experiment="chaos-storm")
        recovered = store.fetch(key)
    counters = _counters(registry)
    contained = (
        counters.get("trace.store.breaker_open", 0) >= 1
        and counters.get("trace.store.breaker_short_circuits", 0) >= 1
        and counters.get("trace.store.breaker_closed", 0) >= 1
        and dropped_put
        and probe_results == [None, None]
        and recovered is not None
        and store.breaker.state == "closed"
    )
    return ChaosOutcome(
        fault="breaker-storm",
        mechanism="corruption circuit breaker",
        contained=contained,
        detail=("opened under sustained corruption, degraded to "
                "pass-through, half-open probe closed it again"
                if contained else f"state={store.breaker.state} "
                f"counters={ {k: v for k, v in counters.items() if 'breaker' in k} }"),
    )


def _check_arq_stress(workdir: Path, *, seed: int,
                      workers: int) -> ChaosOutcome:
    del workdir, workers
    registry = MetricsRegistry()
    with using(registry):
        transfer = adaptive_under_stress(
            2, payload=b"UF", interval_ms=10.0, seed=seed,
            policy=ArqPolicy(attempts_per_level=2, max_escalations=6),
        )
    escalations = _counters(registry).get("channel.arq.escalations", 0)
    contained = transfer.delivered and transfer.escalations >= 1
    return ChaosOutcome(
        fault="arq-stress",
        mechanism="adaptive ARQ escalation",
        contained=contained,
        detail=(f"delivered at {transfer.final_interval_ms:g} ms after "
                f"{escalations} escalations "
                f"(path {'->'.join(f'{i:g}' for i in transfer.interval_path_ms)})"
                if contained else
                f"delivered={transfer.delivered} "
                f"escalations={transfer.escalations}"),
    )


def _remote_corpus(seed: int, count: int = 4):
    """(key, records) pairs for the remote checks, seed-derived."""
    from ..trace.store import TraceStore

    return [
        (TraceStore.key("chaos-remote", params={"slot": slot}, seed=seed),
         _records(seed + slot))
        for slot in range(count)
    ]


def _served_identical(store, pairs) -> bool:
    """Every key fetches, and every payload is bit-identical."""
    for key, reference in pairs:
        fetched = store.fetch(key)
        if fetched is None:
            return False
        _meta, records = fetched
        if len(records) != len(reference):
            return False
        for got, want in zip(records, reference):
            if (got.label != want.label
                    or list(got.times_ms) != list(want.times_ms)
                    or list(got.freqs_mhz) != list(want.freqs_mhz)):
                return False
    return True


def _check_remote_timeout_storm(workdir: Path, *, seed: int,
                                workers: int) -> ChaosOutcome:
    from ..service.remote import RemoteBlobBackend
    from ..service.store import ShardedTraceStore
    from ..service.transport import FaultSpec

    del workers
    backend = RemoteBlobBackend(
        workdir / "store", shard_count=2, replication=2, seed=seed,
        faults=FaultSpec(timeout_rate=0.95),
    )
    store = ShardedTraceStore(backend=backend, shards=2)
    pairs = _remote_corpus(seed)
    registry = MetricsRegistry()
    with using(registry):
        for key, records in pairs:
            store.put(key, records, experiment="chaos-remote")
        identical = _served_identical(store, pairs)
    counters = _counters(registry)
    timeouts = counters.get("service.transport.timeouts", 0)
    absorbed = (counters.get("service.remote.retries", 0)
                + counters.get("service.remote.degraded_reads", 0)
                + counters.get("service.remote.degraded_writes", 0)
                + counters.get("service.remote.puts_below_quorum", 0))
    contained = identical and timeouts >= 1 and absorbed >= 1
    return ChaosOutcome(
        fault="remote-timeout-storm",
        mechanism="remote breaker + write-through cache",
        contained=contained,
        detail=(f"{timeouts} injected timeouts absorbed "
                f"({counters.get('service.remote.retries', 0)} retries, "
                f"{counters.get('service.remote.degraded_reads', 0)} "
                f"degraded reads), every serve bit-identical"
                if contained else f"identical={identical} "
                f"timeouts={timeouts} absorbed={absorbed}"),
    )


def _check_replica_loss(workdir: Path, *, seed: int,
                        workers: int) -> ChaosOutcome:
    import shutil

    from ..service.remote import RemoteBlobBackend
    from ..service.store import ShardedTraceStore

    del workers
    root = workdir / "store"
    writer = ShardedTraceStore(
        backend=RemoteBlobBackend(root, shard_count=2, replication=3,
                                  seed=seed),
        shards=2,
    )
    pairs = _remote_corpus(seed)
    for key, records in pairs:
        writer.put(key, records, experiment="chaos-remote")
    # Lose one replica node entirely, and every local cache with it.
    for shard_dir in (root / "remote").glob("shard-*"):
        shutil.rmtree(shard_dir / "replica-1", ignore_errors=True)
    shutil.rmtree(root / "cache", ignore_errors=True)
    reader = ShardedTraceStore(
        backend=RemoteBlobBackend(root, shard_count=2, replication=3,
                                  seed=seed),
        shards=2,
    )
    registry = MetricsRegistry()
    with using(registry):
        identical = _served_identical(reader, pairs)
    repairs = _counters(registry).get("service.remote.read_repairs", 0)
    restored = sum(
        len(list((shard_dir / "replica-1" / "blobs").glob("*.uftc")))
        for shard_dir in (root / "remote").glob("shard-*")
        if (shard_dir / "replica-1" / "blobs").is_dir()
    )
    contained = identical and repairs >= 1 and restored >= len(pairs)
    return ChaosOutcome(
        fault="replica-loss",
        mechanism="quorum reads + read repair",
        contained=contained,
        detail=(f"served from surviving replicas, {repairs} read "
                f"repairs restored {restored} blobs on the lost node"
                if contained else f"identical={identical} "
                f"repairs={repairs} restored={restored}"),
    )


def _check_torn_remote_put(workdir: Path, *, seed: int,
                           workers: int) -> ChaosOutcome:
    import shutil

    from ..service.remote import RemoteBlobBackend
    from ..service.store import ShardedTraceStore

    del workers
    root = workdir / "store"
    writer = ShardedTraceStore(
        backend=RemoteBlobBackend(root, shard_count=2, replication=3,
                                  seed=seed),
        shards=2,
    )
    pairs = _remote_corpus(seed)
    for key, records in pairs:
        writer.put(key, records, experiment="chaos-remote")
    # Tear replica-0's copy of every blob: publish only a prefix, the
    # way a remote multipart upload dies between parts.
    torn = 0
    for shard_dir in (root / "remote").glob("shard-*"):
        blob_dir = shard_dir / "replica-0" / "blobs"
        for blob in sorted(blob_dir.glob("*.uftc")):
            data = blob.read_bytes()
            blob.write_bytes(data[: max(1, len(data) // 3)])
            torn += 1
    shutil.rmtree(root / "cache", ignore_errors=True)
    reader = ShardedTraceStore(
        backend=RemoteBlobBackend(root, shard_count=2, replication=3,
                                  seed=seed),
        shards=2,
    )
    registry = MetricsRegistry()
    with using(registry):
        identical = _served_identical(reader, pairs)
    counters = _counters(registry)
    rejected = counters.get("service.remote.torn_rejected", 0)
    repairs = counters.get("service.remote.read_repairs", 0)
    # Read repair must have rewritten full, digest-valid objects over
    # every torn copy.
    healed = all(
        reader.shard_for(key) is not None  # routing sanity
        and reader.fetch(key) is not None
        for key, _records_ in pairs
    )
    contained = (identical and healed and torn >= 1
                 and rejected >= torn and repairs >= torn)
    return ChaosOutcome(
        fault="torn-remote-put",
        mechanism="digest rejection + read repair",
        contained=contained,
        detail=(f"{torn} torn replica objects rejected by digest "
                f"({rejected} rejections), {repairs} read repairs, "
                f"never a torn byte served"
                if contained else f"identical={identical} torn={torn} "
                f"rejected={rejected} repairs={repairs}"),
    )


def _check_rebalance_crash_resume(workdir: Path, *, seed: int,
                                  workers: int) -> ChaosOutcome:
    import shutil

    from ..errors import RebalanceInterrupted
    from ..service.remote import (
        RemoteBlobBackend,
        execute_rebalance,
        plan_rebalance,
        shard_io_for,
        verify_rebalance,
    )
    from ..service.store import ShardedTraceStore

    del workers
    root = workdir / "store"
    writer = ShardedTraceStore(
        backend=RemoteBlobBackend(root, shard_count=8, replication=2,
                                  seed=seed),
        shards=8,
    )
    pairs = _remote_corpus(seed, count=8)
    for key, records in pairs:
        writer.put(key, records, experiment="chaos-remote")
    io = shard_io_for(RemoteBlobBackend(root, shard_count=8,
                                        replication=2, seed=seed))
    plan = plan_rebalance(io, 8, 12)
    crashed = False
    if len(plan.steps) >= 2:
        try:
            execute_rebalance(io, plan,
                              checkpoint_dir=workdir / "ckpt",
                              crash_after=len(plan.steps) // 2)
        except RebalanceInterrupted:
            crashed = True
    report = execute_rebalance(io, plan,
                               checkpoint_dir=workdir / "ckpt")
    resumed = report["skipped"] >= 1 if crashed else True
    verdict = verify_rebalance(io, plan)
    shutil.rmtree(root / "cache", ignore_errors=True)
    reader = ShardedTraceStore(
        backend=RemoteBlobBackend(root, shard_count=12, replication=2,
                                  seed=seed),
        shards=12,
    )
    identical = _served_identical(reader, pairs)
    contained = (crashed or len(plan.steps) < 2) and resumed \
        and verdict["clean"] and identical
    return ChaosOutcome(
        fault="rebalance-crash-resume",
        mechanism="checkpointed migration plan",
        contained=contained,
        detail=(f"killed after {len(plan.steps) // 2}/"
                f"{len(plan.steps)} steps, resume skipped "
                f"{report['skipped']} from checkpoint, "
                f"{verdict['ok']}/{verdict['objects']} objects "
                f"bit-identical at 12 shards"
                if contained else f"crashed={crashed} resumed={resumed} "
                f"clean={verdict['clean']} identical={identical}"),
    )


_CHECKS = {
    "crashing-trial": _check_crashing_trial,
    "worker-death": _check_worker_death,
    "interrupted-sweep": _check_interrupted_sweep,
    "flipped-crc": _check_flipped_crc,
    "torn-index": _check_torn_index,
    "half-written-temp": _check_half_written_temp,
    "breaker-storm": _check_breaker_storm,
    "arq-stress": _check_arq_stress,
    "remote-timeout-storm": _check_remote_timeout_storm,
    "replica-loss": _check_replica_loss,
    "torn-remote-put": _check_torn_remote_put,
    "rebalance-crash-resume": _check_rebalance_crash_resume,
}


def run_chaos(workdir, *, seed: int = 0, workers: int | None = 1,
              faults: tuple[str, ...] | None = None) -> list[ChaosOutcome]:
    """Run the fault matrix; each check gets its own subdirectory.

    Returns one :class:`ChaosOutcome` per requested fault, in
    :data:`CHAOS_FAULTS` order.  A check that *itself* crashes counts
    as uncontained — escaping the harness is the worst containment
    failure of all.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    selected = CHAOS_FAULTS if faults is None else tuple(faults)
    workers = 1 if workers is None else workers
    outcomes: list[ChaosOutcome] = []
    for name in CHAOS_FAULTS:
        if name not in selected:
            continue
        check_dir = workdir / name.replace("-", "_")
        check_dir.mkdir(parents=True, exist_ok=True)
        try:
            outcomes.append(
                _CHECKS[name](check_dir, seed=seed, workers=workers)
            )
        except Exception as exc:  # noqa: BLE001 - report, don't die
            outcomes.append(ChaosOutcome(
                fault=name,
                mechanism=_CHECKS[name].__doc__ or "?",
                contained=False,
                detail=f"check escaped: {type(exc).__name__}: {exc}",
            ))
    return outcomes
