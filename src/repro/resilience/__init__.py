"""Fault tolerance for every long-running path.

Four mechanisms, each driven by the chaos matrix in
:mod:`repro.resilience.chaos`:

* :mod:`~repro.resilience.retry` — transient-vs-permanent error
  classification and deterministic jittered backoff for the parallel
  runner's ``on_error="retry"`` mode.
* :mod:`~repro.resilience.checkpoint` — atomic, content-keyed
  checkpoint files that let interrupted sweeps resume bit-identically.
* :mod:`~repro.resilience.breaker` — a call-counted circuit breaker
  that degrades the trace store to pass-through under repeated
  corruption.
* :mod:`~repro.resilience.arq` — adaptive ARQ: bounded ``interval_ms``
  escalation when frames keep failing CRC under stress.

``arq`` and ``chaos`` pull in the channel stack and the experiment
runners, so they are loaded lazily (PEP 562) — importing this package
stays cheap and cycle-free for the modules (``engine.parallel``,
``trace.store``) that depend on the light pieces.
"""

from .breaker import CircuitBreaker
from .checkpoint import Checkpoint, checkpoint_key
from .retry import PERMANENT_ERRORS, TRANSIENT_ERRORS, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "Checkpoint",
    "checkpoint_key",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "PERMANENT_ERRORS",
    # lazy (heavy imports):
    "ArqPolicy",
    "AdaptiveTransfer",
    "transmit_adaptive",
    "adaptive_under_stress",
    "ChaosOutcome",
    "run_chaos",
    "CHAOS_FAULTS",
]

_LAZY = {
    "ArqPolicy": "arq",
    "AdaptiveTransfer": "arq",
    "transmit_adaptive": "arq",
    "adaptive_under_stress": "arq",
    "ChaosOutcome": "chaos",
    "run_chaos": "chaos",
    "CHAOS_FAULTS": "chaos",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    return getattr(module, name)
