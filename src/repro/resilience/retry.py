"""Retry policies: error classification plus deterministic backoff.

A :class:`RetryPolicy` answers two questions for the parallel runner:

* *Is this exception worth retrying?*  Transient faults (worker death,
  I/O hiccups, OOM-killed children) are; deterministic bugs are not —
  a ``ValueError`` raised by a pure function of ``(seed, label)`` will
  raise again on every attempt, so retrying it only hides the bug.
* *How long to wait before the next attempt?*  Exponential backoff with
  jitter — but the jitter is **derived from the trial's seed and label**
  through the same :func:`~repro.rng.child_rng` scheme the simulator
  uses, so two runs of the same experiment back off identically and a
  retried trial stays a pure function of its inputs.

The trial itself is seeded, so re-running it after a transient fault
produces a bit-identical result; the policy only has to make sure the
*bookkeeping* around the re-run (sleep schedule, attempt counts) is
just as reproducible.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import ConfigError, ReproError
from ..rng import child_rng

__all__ = ["RetryPolicy", "TRANSIENT_ERRORS", "PERMANENT_ERRORS"]

#: Faults of the *environment*: a re-run can plausibly succeed.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    OSError,
    EOFError,
    ConnectionError,
    TimeoutError,
    InterruptedError,
    MemoryError,
    BrokenProcessPool,
)

#: Faults of the *code or inputs*: deterministic, so retrying is futile.
PERMANENT_ERRORS: tuple[type[BaseException], ...] = (
    ReproError,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    AssertionError,
    ZeroDivisionError,
    NotImplementedError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run a crashed trial, and how to wait.

    ``backoff_s(attempt)`` grows geometrically from ``base_backoff_s``
    and is capped at ``max_backoff_s``; the jitter factor (0.5x–1.5x)
    comes from ``child_rng(seed, f"{label}/retry-{attempt}")`` so the
    schedule is a pure function of the trial's identity.  Tests and
    benchmarks pass ``base_backoff_s=0.0`` to retry without sleeping.

    Classification: ``permanent`` wins over ``transient`` when both
    match (``ReproError`` et al. are never retried even though some
    subclass an ``OSError``-adjacent type); an exception matching
    neither tuple is treated as transient — an unknown crash in a
    worker is more often environmental than a latent determinism bug,
    and a futile retry costs one attempt while a skipped rescue costs
    the whole sweep.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    transient: tuple[type[BaseException], ...] = TRANSIENT_ERRORS
    permanent: tuple[type[BaseException], ...] = PERMANENT_ERRORS

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth retrying (permanent classes win)."""
        if isinstance(exc, self.permanent):
            return False
        if isinstance(exc, self.transient):
            return True
        return True

    def backoff_s(self, attempt: int, *, seed: int | None = None,
                  label: str | None = None) -> float:
        """Deterministic jittered delay before retry ``attempt`` (1-based).

        The same ``(seed, label, attempt)`` triple always yields the
        same delay, so a retried run's timing bookkeeping replays
        exactly.
        """
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.base_backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        if base <= 0.0:
            return 0.0
        rng = child_rng(seed if seed is not None else 0,
                        f"{label or 'trial'}/retry-{attempt}")
        return base * (0.5 + rng.random())

    def sleep(self, attempt: int, *, seed: int | None = None,
              label: str | None = None) -> float:
        """Sleep for the backoff delay; returns the duration slept."""
        delay = self.backoff_s(attempt, seed=seed, label=label)
        if delay > 0.0:
            time.sleep(delay)
        return delay
