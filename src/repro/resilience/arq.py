"""Adaptive ARQ: bounded interval escalation under sustained frame loss.

:func:`repro.core.framing.send_message_reliable` already retransmits a
frame until its checksum verifies — but it retransmits *at the same
bit interval*, so under heavy background stress (Table 2's right-hand
columns) every attempt fails the same way and the transfer flatlines.
The paper's own data shows the fix: error rate falls monotonically as
``interval_ms`` grows (Figure 10), so a channel that keeps failing CRC
should trade bandwidth for reliability and *widen the interval*.

:func:`transmit_adaptive` closes that loop.  Each escalation level
runs a bounded stop-and-wait ARQ burst; when the burst exhausts its
attempts the sender steps ``interval_ms`` up one notch on the shared
interval grid (both endpoints know the grid and the escalation rule —
Section 4.1 lets them agree on protocol ahead of time), rebuilds the
channel at the wider interval and re-syncs to the new interval
boundary.  Escalation is bounded by :class:`ArqPolicy`, so a dead
channel fails cleanly instead of widening forever.

Telemetry: ``channel.arq.escalations`` / ``deliveries`` / ``failures``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..telemetry.context import active_registry
from ..units import ms

__all__ = [
    "ArqPolicy",
    "AdaptiveTransfer",
    "transmit_adaptive",
    "adaptive_under_stress",
    "DEFAULT_ESCALATION_GRID_MS",
]

#: The paper's sweep grid (Figure 10), ascending: each escalation step
#: widens the bit interval to the next entry.
DEFAULT_ESCALATION_GRID_MS: tuple[float, ...] = (
    10.0, 12.0, 15.0, 18.0, 21.0, 24.0, 28.0, 33.0, 38.0, 45.0, 60.0,
)


@dataclass(frozen=True)
class ArqPolicy:
    """How hard to try at each interval before widening it."""

    attempts_per_level: int = 2
    max_escalations: int = 4
    grid_ms: tuple[float, ...] = DEFAULT_ESCALATION_GRID_MS

    def validate(self) -> None:
        if self.attempts_per_level < 1:
            raise ConfigError(
                "attempts_per_level must be >= 1, "
                f"got {self.attempts_per_level}"
            )
        if self.max_escalations < 0:
            raise ConfigError(
                f"max_escalations must be >= 0, got {self.max_escalations}"
            )
        if not self.grid_ms or list(self.grid_ms) != sorted(self.grid_ms):
            raise ConfigError("grid_ms must be a non-empty ascending grid")

    def next_interval_ms(self, current_ms: float) -> float | None:
        """The next-wider grid interval, or ``None`` at the top."""
        for value in self.grid_ms:
            if value > current_ms:
                return value
        return None


@dataclass(frozen=True)
class AdaptiveTransfer:
    """Outcome of an adaptive transfer: what arrived, and at what cost."""

    delivered: bool
    payload: bytes
    attempts: int
    escalations: int
    #: Every interval the transfer ran at, in order; the last entry is
    #: the interval the final (successful or abandoned) burst used.
    interval_path_ms: tuple[float, ...]
    corrected_bits: int

    @property
    def final_interval_ms(self) -> float:
        return self.interval_path_ms[-1]


def transmit_adaptive(payload: bytes, *,
                      system=None,
                      channel_factory=None,
                      interval_ms: float = 21.0,
                      policy: ArqPolicy | None = None,
                      sender_cores: tuple[int, ...] = (0,),
                      receiver_core: int = 8,
                      sender_mode=None) -> AdaptiveTransfer:
    """Deliver ``payload`` with escalating-interval ARQ.

    Either pass a live ``system`` (a fresh
    :class:`~repro.core.channel.UFVariationChannel` is deployed per
    escalation level — construction re-syncs the endpoints to the new
    interval grid) or a ``channel_factory(interval_ms)`` for custom
    channels and tests.
    """
    from ..core.framing import send_message_reliable

    policy = policy if policy is not None else ArqPolicy()
    policy.validate()
    if channel_factory is None:
        if system is None:
            raise ConfigError(
                "transmit_adaptive needs a system or a channel_factory"
            )
        from ..core.channel import UFVariationChannel
        from ..core.protocol import ChannelConfig
        from ..core.sender import SenderMode

        mode = sender_mode if sender_mode is not None else SenderMode.STALL

        def channel_factory(level_interval_ms: float):
            return UFVariationChannel(
                system,
                config=ChannelConfig(interval_ns=ms(level_interval_ms)),
                sender_cores=sender_cores,
                receiver_core=receiver_core,
                sender_mode=mode,
            )

    registry = active_registry()
    current_ms = float(interval_ms)
    path = [current_ms]
    attempts = 0
    escalations = 0
    while True:
        channel = channel_factory(current_ms)
        try:
            transfer = send_message_reliable(
                channel, payload, max_attempts=policy.attempts_per_level
            )
        finally:
            shutdown = getattr(channel, "shutdown", None)
            if shutdown is not None:
                shutdown()
        attempts += transfer.attempts
        if transfer.delivered:
            if registry is not None:
                registry.inc("channel.arq.deliveries")
            return AdaptiveTransfer(
                delivered=True,
                payload=transfer.frame.payload,
                attempts=attempts,
                escalations=escalations,
                interval_path_ms=tuple(path),
                corrected_bits=transfer.frame.corrected_bits,
            )
        next_ms = policy.next_interval_ms(current_ms)
        if escalations >= policy.max_escalations or next_ms is None:
            if registry is not None:
                registry.inc("channel.arq.failures")
            return AdaptiveTransfer(
                delivered=False,
                payload=transfer.frame.payload if transfer.frame else b"",
                attempts=attempts,
                escalations=escalations,
                interval_path_ms=tuple(path),
                corrected_bits=(transfer.frame.corrected_bits
                                if transfer.frame else 0),
            )
        escalations += 1
        if registry is not None:
            registry.inc("channel.arq.escalations")
        current_ms = next_ms
        path.append(current_ms)


def adaptive_under_stress(stress_threads: int, *,
                          payload: bytes = b"UF",
                          interval_ms: float = 10.0,
                          seed: int = 0,
                          platform=None,
                          policy: ArqPolicy | None = None,
                          sender_cores: tuple[int, ...] =
                          (0, 1, 2, 3, 4, 5)) -> AdaptiveTransfer:
    """Adaptive ARQ against Table 2's background-stress setup.

    Same deployment as
    :func:`repro.core.reliability.capacity_under_stress` — the sender
    stalls six cores, the stressors hammer the rest of the socket —
    but driven through :func:`transmit_adaptive`, so instead of one
    fixed-interval capacity number the result shows the closed loop
    trading bandwidth for delivery: graceful degradation, not a
    flatline.
    """
    from ..platform.system import System
    from ..workloads.stressor import launch_stressor_threads

    system = System(platform, seed=seed)
    if stress_threads:
        launch_stressor_threads(
            system,
            stress_threads,
            socket_id=0,
            avoid_cores=set(sender_cores) | {8},
        )
        # Let the stressor phase schedules decorrelate from the start.
        system.run_ms(50)
    try:
        return transmit_adaptive(
            payload,
            system=system,
            interval_ms=interval_ms,
            policy=policy,
            sender_cores=sender_cores,
            receiver_core=8,
        )
    finally:
        system.stop()
