"""A ring interconnect, as used by client and pre-Skylake Xeon parts.

The ring-contention baseline channel (Paccagnella et al. [50]) observes
slot contention on ring segments.  Our experiment platform is a mesh,
but the channel abstraction only needs segment routes and overlap
queries, so the ring is modelled with the same link interface as the
mesh and the channel is evaluated against whichever interconnect the
platform exposes.
"""

from __future__ import annotations

from ..errors import ConfigError

RingLink = tuple[int, int]


class RingTopology:
    """``num_stops`` ring stops connected in a cycle, bidirectional."""

    def __init__(self, num_stops: int) -> None:
        if num_stops < 2:
            raise ConfigError("a ring needs at least two stops")
        self.num_stops = num_stops

    def distance(self, src: int, dst: int) -> int:
        """Hop count along the shorter arc."""
        self._check(src)
        self._check(dst)
        clockwise = (dst - src) % self.num_stops
        return min(clockwise, self.num_stops - clockwise)

    def route(self, src: int, dst: int) -> list[RingLink]:
        """Directed segments along the shorter arc (ties go clockwise)."""
        self._check(src)
        self._check(dst)
        clockwise = (dst - src) % self.num_stops
        counter = self.num_stops - clockwise
        step = 1 if clockwise <= counter else -1
        links: list[RingLink] = []
        stop = src
        while stop != dst:
            nxt = (stop + step) % self.num_stops
            links.append((stop, nxt))
            stop = nxt
        return links

    def routes_overlap(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        """Whether two (src, dst) transfers share a ring segment.

        This is the contention predicate of the ring channel: the
        receiver only sees the sender when their segment sets intersect
        in the same direction.
        """
        return bool(set(self.route(*a)) & set(self.route(*b)))

    def _check(self, stop: int) -> None:
        if not 0 <= stop < self.num_stops:
            raise ConfigError(f"no such ring stop {stop}")
