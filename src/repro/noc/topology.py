"""The 2D mesh interconnect of Skylake-SP (Figure 2).

The die is a ``rows x cols`` grid of tiles.  A *core tile* hosts a core
plus an LLC/directory slice; a *controller tile* hosts an integrated
memory controller.  Disabled tiles keep functional routers (the paper's
footnote 1), so routing crosses them freely — only their core and slice
are fused off.

Core ``i`` of a socket sits on the ``i``-th enabled core tile (in the
configured order) and LLC slice ``i`` shares that tile, which is what
makes "accessing the local slice" a 0-hop operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import SocketConfig
from ..errors import ConfigError

Coord = tuple[int, int]
Link = tuple[Coord, Coord]


class TileKind(enum.Enum):
    """What occupies a mesh grid position."""

    CORE = "core"
    IMC = "imc"
    DISABLED = "disabled"


@dataclass(frozen=True)
class Tile:
    """One grid position on the die."""

    coord: Coord
    kind: TileKind
    core_id: int | None = None   # also the slice id for CORE tiles


class MeshTopology:
    """Tile placement, XY routing and hop distances for one socket."""

    def __init__(self, config: SocketConfig) -> None:
        self.rows = config.mesh_rows
        self.cols = config.mesh_cols
        self._tiles: dict[Coord, Tile] = {}
        for core_id, coord in enumerate(config.core_tiles):
            self._tiles[coord] = Tile(coord, TileKind.CORE, core_id)
        for coord in config.imc_tiles:
            if coord in self._tiles:
                raise ConfigError(f"IMC tile {coord} collides with a core")
            self._tiles[coord] = Tile(coord, TileKind.IMC)
        for row in range(self.rows):
            for col in range(self.cols):
                self._tiles.setdefault(
                    (row, col), Tile((row, col), TileKind.DISABLED)
                )
        self._core_coord: dict[int, Coord] = {
            tile.core_id: coord
            for coord, tile in self._tiles.items()
            if tile.kind is TileKind.CORE
        }
        # Lifetime counters read by the telemetry harvest.
        self.hop_queries = 0
        self.hops_traversed = 0
        self.route_queries = 0

    @property
    def num_cores(self) -> int:
        return len(self._core_coord)

    def tile(self, coord: Coord) -> Tile:
        """The tile at a grid coordinate."""
        if coord not in self._tiles:
            raise ConfigError(f"no tile at {coord}")
        return self._tiles[coord]

    def core_coord(self, core_id: int) -> Coord:
        """Grid coordinate of a core (and of its LLC slice)."""
        if core_id not in self._core_coord:
            raise ConfigError(f"no such core {core_id}")
        return self._core_coord[core_id]

    def slice_coord(self, slice_id: int) -> Coord:
        """Grid coordinate of an LLC slice (co-located with its core)."""
        return self.core_coord(slice_id)

    def hops(self, core_id: int, slice_id: int) -> int:
        """Manhattan hop count between a core and an LLC slice."""
        (r1, c1) = self.core_coord(core_id)
        (r2, c2) = self.slice_coord(slice_id)
        distance = abs(r1 - r2) + abs(c1 - c2)
        self.hop_queries += 1
        self.hops_traversed += distance
        return distance

    def slices_at_distance(self, core_id: int, hops: int) -> list[int]:
        """All slice ids exactly ``hops`` away from ``core_id``.

        This is how experiments pick "a 2-hop slice" for a given core
        (Figure 3's traffic types, Figure 8's latency panels).
        """
        return [
            slice_id
            for slice_id in self._core_coord
            if self.hops(core_id, slice_id) == hops
        ]

    def max_distance(self, core_id: int) -> int:
        """The farthest slice distance reachable from ``core_id``."""
        return max(self.hops(core_id, s) for s in self._core_coord)

    def route(self, src: Coord, dst: Coord) -> list[Link]:
        """Directed links of the XY route (X/row first, then Y/column).

        Disabled tiles are crossed freely — their routers stay powered
        (Figure 2, footnote 1).
        """
        links: list[Link] = []
        row, col = src
        step = 1 if dst[0] > row else -1
        while row != dst[0]:
            links.append(((row, col), (row + step, col)))
            row += step
        step = 1 if dst[1] > col else -1
        while col != dst[1]:
            links.append(((row, col), (row, col + step)))
            col += step
        return links

    def core_slice_route(self, core_id: int, slice_id: int) -> list:
        """The XY route from a core tile to an LLC slice tile.

        The returned path ends with the slice's *ingress port* — a
        pseudo-link shared by every request to that slice.  Two flows
        targeting the same slice therefore contend even when their mesh
        paths are disjoint, modelling the slice's bounded request
        bandwidth.
        """
        self.route_queries += 1
        links: list = self.route(self.core_coord(core_id),
                                 self.slice_coord(slice_id))
        links.append(("ingress", self.slice_coord(slice_id)))
        return links
