"""On-chip interconnect models: the Skylake-SP mesh and a ring.

Provides tile placement (Figure 2), XY routing, hop-distance queries
(the "0-hop .. 3-hop" parameter of Sections 3.1 and 4.2) and link-level
contention accounting used by the interconnect-contention baseline
channels and by the time-multiplexed partitioning defense.
"""

from .topology import MeshTopology, TileKind, Tile
from .ring import RingTopology
from .contention import ContentionTracker, Flow

__all__ = [
    "ContentionTracker",
    "Flow",
    "MeshTopology",
    "RingTopology",
    "Tile",
    "TileKind",
]
