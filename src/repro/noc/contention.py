"""Link-level contention accounting.

Interconnect covert channels (mesh [11], ring [50]) work because two
flows crossing the same link slow each other down.  The tracker keeps
the set of active flows per directed link together with their traffic
rates; a measurement flow asks how much competing traffic shares its
route, and the latency model converts that into extra cycles.

The time-multiplexed scheduling defense (SurfNoC-style, Section 4.4)
is modelled by tagging each flow with a security domain: under TDM,
flows in *different* domains are scheduled in disjoint time slots and
therefore contribute no contention to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

Link = Hashable


@dataclass(frozen=True)
class Flow:
    """One traffic stream across the interconnect."""

    flow_id: int
    links: tuple[Link, ...]
    rate_per_us: float
    domain: int = 0


@dataclass
class ContentionTracker:
    """Registry of active flows and per-link load queries."""

    time_multiplexed: bool = False
    _flows: dict[int, Flow] = field(default_factory=dict)
    _next_id: int = 0
    # Lifetime counters read by the telemetry harvest.
    flows_registered: int = 0
    rate_updates: int = 0
    contention_queries: int = 0

    def add_flow(self, links: list[Link], rate_per_us: float,
                 domain: int = 0) -> int:
        """Register a flow; returns its id for later removal."""
        flow_id = self._next_id
        self._next_id += 1
        self.flows_registered += 1
        self._flows[flow_id] = Flow(flow_id, tuple(links), rate_per_us,
                                    domain)
        return flow_id

    def remove_flow(self, flow_id: int) -> None:
        """Unregister a flow.  Unknown ids are ignored (idempotent)."""
        self._flows.pop(flow_id, None)

    def update_rate(self, flow_id: int, rate_per_us: float) -> None:
        """Change the traffic rate of an existing flow."""
        self.rate_updates += 1
        flow = self._flows[flow_id]
        self._flows[flow_id] = Flow(flow.flow_id, flow.links, rate_per_us,
                                    flow.domain)

    @property
    def num_flows(self) -> int:
        return len(self._flows)

    def link_load(self, link: Link, *, observer_domain: int = 0,
                  exclude_flow: int | None = None) -> float:
        """Total competing rate on ``link`` as seen by an observer.

        Under time multiplexing, cross-domain flows are invisible —
        their slots never coincide with the observer's.
        """
        total = 0.0
        for flow in self._flows.values():
            if flow.flow_id == exclude_flow:
                continue
            if self.time_multiplexed and flow.domain != observer_domain:
                continue
            if link in flow.links:
                total += flow.rate_per_us
        return total

    def route_contention(self, links: list[Link], *,
                         observer_domain: int = 0,
                         exclude_flow: int | None = None) -> float:
        """The worst competing load across a route's links.

        The bottleneck link dominates observed slowdown, so the maximum
        (not the sum) is the right aggregate.
        """
        self.contention_queries += 1
        if not links:
            return 0.0
        return max(
            self.link_load(link, observer_domain=observer_domain,
                           exclude_flow=exclude_flow)
            for link in links
        )
