"""A time-sliced scheduler with migrations.

Round-robin over a core pool with a configurable quantum (Linux CFS
grants interactive threads a few milliseconds).  On every quantum
boundary the scheduler re-places its managed workloads:

* if there are more runnable workloads than cores, the overflow waits
  (their cores' profiles go idle — they are simply not running);
* with probability ``migrate_prob`` a running workload is moved to a
  different core, modelling load-balancer migrations.

Managed workloads must tolerate stop/start cycles — the steady loops
(traffic, stalling, nop) and the covert-channel sender threads do; a
:class:`~repro.workloads.base.PhasedWorkload` would restart its phase
schedule on migration and is rejected.
"""

from __future__ import annotations

import numpy as np

from ..engine import PeriodicTask
from ..errors import PlacementError
from ..platform.system import System
from ..units import ms
from ..workloads.base import PhasedWorkload, Workload


class TimeSliceScheduler:
    """Schedules unpinned workloads over a pool of cores."""

    def __init__(
        self,
        system: System,
        *,
        socket_id: int = 0,
        core_pool: list[int] | None = None,
        quantum_ms: float = 4.0,
        migrate_prob: float = 0.25,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.system = system
        self.socket_id = socket_id
        if core_pool is None:
            socket = system.socket(socket_id)
            core_pool = [
                core.core_id for core in socket.cores
                if core.owner is None
            ]
        if not core_pool:
            raise PlacementError("scheduler needs at least one core")
        self.core_pool = list(core_pool)
        self.quantum_ns = ms(quantum_ms)
        self.migrate_prob = migrate_prob
        self.rng = rng if rng is not None else system.namer.rng(
            "scheduler"
        )
        self._workloads: list[Workload] = []
        self._rotation = 0
        self.migrations = 0
        self.preemptions = 0
        self._task: PeriodicTask | None = None

    # -- management -----------------------------------------------------------

    def manage(self, workload: Workload) -> None:
        """Take scheduling responsibility for a detached workload."""
        if isinstance(workload, PhasedWorkload):
            raise PlacementError(
                "phased workloads cannot be time-sliced (their phase "
                "schedule would restart on every migration)"
            )
        if workload.system is not None:
            raise PlacementError(
                f"{workload.name} is already placed; detach it first"
            )
        self._workloads.append(workload)

    def start(self) -> None:
        """Place everything and begin quantum-boundary rescheduling."""
        if self._task is not None:
            raise PlacementError("scheduler already running")
        self._place()
        self._task = PeriodicTask(
            self.system.engine,
            self.quantum_ns,
            self._on_quantum,
            name="timeslice-scheduler",
        )

    def stop(self) -> None:
        """Stop scheduling and park every workload."""
        if self._task is not None:
            self._task.stop()
            self._task = None
        for workload in self._workloads:
            self._suspend(workload)

    # -- internals ----------------------------------------------------------------

    def _suspend(self, workload: Workload) -> None:
        if workload.system is not None:
            workload.stop()
            workload.detach()

    def _place(self) -> None:
        """Assign the current rotation of workloads to the core pool.

        Two passes — suspend everything that must move or wait, then
        attach — so a core is never double-claimed mid-shuffle.
        """
        n = len(self._workloads)
        if n == 0:
            return
        runnable = [
            self._workloads[(self._rotation + index) % n]
            for index in range(min(n, len(self.core_pool)))
        ]
        assignment = {
            workload: self.core_pool[
                (self._rotation + index) % len(self.core_pool)
            ]
            for index, workload in enumerate(runnable)
        }
        for workload in self._workloads:
            target = assignment.get(workload)
            if workload.system is None:
                continue
            if target is None:
                self.preemptions += 1
                self._suspend(workload)
            elif workload.core_id != target:
                self._suspend(workload)
        for workload, core in assignment.items():
            if workload.system is None:
                workload.attach(self.system, self.socket_id, core)
                workload.start()

    def _on_quantum(self) -> None:
        n = len(self._workloads)
        if n == 0:
            return
        if n > len(self.core_pool):
            # Waiting threads exist: rotate who runs.
            self._rotation = (self._rotation + 1) % n
            self._place()
            return
        if self.rng.random() < self.migrate_prob:
            # Load-balancer migration: rotate the core assignment.
            self._rotation = (self._rotation + 1) % max(
                len(self.core_pool), 1
            )
            self.migrations += 1
            self._place()

    @property
    def running_workloads(self) -> list[str]:
        """Names of workloads currently on a core."""
        return [
            w.name for w in self._workloads if w.system is not None
        ]
