"""OS-level scheduling on the simulated platform.

The paper's experiments pin every thread ("pin each thread to a
different core", Section 3.1).  Real co-tenants are scheduled: the OS
time-slices runnable threads over cores and migrates them.  This
package provides a time-sliced scheduler so experiments can test how
the channels behave when the sender (or background noise) is *not*
pinned — an ablation the paper does not run but any deployment would
care about.
"""

from .scheduler import TimeSliceScheduler

__all__ = ["TimeSliceScheduler"]
