"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers
can catch the whole family with one clause while still distinguishing
the precise condition when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A platform or experiment configuration is inconsistent."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped engine."""


class PlacementError(ReproError):
    """A thread could not be pinned to the requested core."""


class MemoryError_(ReproError):
    """The simulated physical memory could not satisfy an allocation."""


class PrivilegeError(ReproError):
    """An unprivileged actor attempted a privileged operation (e.g. MSR)."""


class ChannelError(ReproError):
    """A covert channel was configured or driven incorrectly."""


class PrerequisiteError(ChannelError):
    """A covert channel's platform prerequisite is unavailable.

    Raised, for example, when Flush+Reload is asked to run without shared
    memory, or Prime+Abort without transactional memory (Table 3's
    "Prerequisites" columns).
    """


class DefenseError(ReproError):
    """A defense mechanism was configured inconsistently."""


class CalibrationError(ReproError):
    """A model calibration constant fell outside its valid range."""
