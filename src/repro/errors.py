"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers
can catch the whole family with one clause while still distinguishing
the precise condition when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A platform or experiment configuration is inconsistent."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped engine."""


class PlacementError(ReproError):
    """A thread could not be pinned to the requested core."""


class MemoryError_(ReproError):
    """The simulated physical memory could not satisfy an allocation."""


class PrivilegeError(ReproError):
    """An unprivileged actor attempted a privileged operation (e.g. MSR)."""


class ChannelError(ReproError):
    """A covert channel was configured or driven incorrectly."""


class PrerequisiteError(ChannelError):
    """A covert channel's platform prerequisite is unavailable.

    Raised, for example, when Flush+Reload is asked to run without shared
    memory, or Prime+Abort without transactional memory (Table 3's
    "Prerequisites" columns).
    """


class DefenseError(ReproError):
    """A defense mechanism was configured inconsistently."""


class CalibrationError(ReproError):
    """A model calibration constant fell outside its valid range."""


class TraceError(ReproError):
    """A frequency-trace artefact (record, corpus or store) is unusable."""


class TraceFormatError(TraceError):
    """A trace blob does not parse as the versioned binary format.

    Raised for a bad magic number, an unsupported format version or a
    structurally impossible layout — the bytes were never a trace, or
    were written by a future writer.
    """


class TraceCorruptionError(TraceFormatError):
    """A trace blob parsed but its integrity checks failed.

    Raised for truncated streams and CRC mismatches: the bytes *were* a
    trace once but have been damaged since.  The store quarantines the
    blob before letting this propagate.
    """


class TraceStoreError(TraceError):
    """The content-addressed trace store is inconsistent.

    Raised, for example, when an index entry points at a blob that no
    longer exists on disk, or a replay asks for a key that was never
    recorded.  The store stays usable after the error.
    """


class ResilienceError(ReproError):
    """A fault-tolerance mechanism exhausted its containment budget.

    Raised when a retried trial stays failed after its
    :class:`~repro.resilience.retry.RetryPolicy` runs out of attempts
    (the alternative — returning a sweep with holes — would let a
    partial result masquerade as a complete one), and by ``repro
    chaos`` when an injected fault escapes containment.
    """


class ValidationError(ReproError):
    """A fuzzed scenario violated a simulator invariant.

    Raised by the :mod:`repro.validate` runner (and the ``repro
    validate`` CLI) when an oracle reports a violation, after the
    failing scenario has been shrunk and written out as a repro file.
    """


class ServiceError(ReproError):
    """The experiment service refused or failed a request.

    Raised by the daemon's request handlers (bad job specs, unknown
    jobs) and by the clients when the server reports a failure.  The
    service stays up after the error — one bad request never takes the
    daemon down.
    """


class QueueFullError(ServiceError):
    """The job queue refused a submission for backpressure.

    The bounded multi-tenant queue rejects rather than buffers without
    limit; the HTTP front-end maps this to ``429 Too Many Requests`` so
    clients know to back off and retry.
    """


class JobNotFoundError(ServiceError):
    """A job id names no job the service knows about."""


class ServiceUnavailableError(ServiceError):
    """The daemon is draining and refuses new work.

    Raised for submissions that arrive after a graceful shutdown was
    requested; the HTTP front end maps it to ``503 Service
    Unavailable``.  In-flight jobs keep running to completion — only
    *new* work is refused.
    """


class TransportError(ServiceError):
    """A remote blob transport was misused (not a remote fault).

    Injected remote faults raise the stdlib transient vocabulary
    (``TimeoutError``, ``ConnectionResetError``) so the retry policy
    classifies them correctly; this class is for *permanent* transport
    problems — malformed object names, invalid fault configuration —
    that retrying can never fix.
    """


class RemoteStoreError(ServiceError):
    """The replicated remote shard store is inconsistent.

    Raised when an object survives on no replica in a readable form,
    or a replica set is configured below its read quorum.  The store
    stays usable for other keys after the error.
    """


class RebalanceError(RemoteStoreError):
    """A shard rebalance could not complete or verify.

    Raised when a migration step finds its object readable at neither
    the source nor the destination shard, or when the post-migration
    verification finds a payload that is not bit-identical to the
    pre-migration manifest.
    """


class RebalanceInterrupted(RebalanceError):
    """A rebalance was deliberately killed mid-migration.

    Raised by the ``crash_after`` test hook (and catchable around an
    operator abort); the checkpoint written so far makes the next
    :func:`~repro.service.remote.execute_rebalance` call resume
    instead of restart.
    """
