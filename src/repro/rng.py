"""Deterministic random-number management.

Every stochastic component of the simulator (latency noise, workload
jitter, website signatures, classifier initialisation) draws from a
``numpy.random.Generator`` handed to it explicitly.  This module supplies
the single place where those generators are derived, so that one integer
experiment seed reproduces an entire experiment bit-for-bit.

Child generators are derived by *name* rather than by call order: adding
a new consumer does not perturb the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5EED


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a root generator from an integer seed.

    ``None`` maps to :data:`DEFAULT_SEED` — experiments are reproducible
    by default and only become nondeterministic when explicitly asked.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a parent seed and a label."""
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def child_rng(parent_seed: int, name: str) -> np.random.Generator:
    """Create a named child generator, independent of sibling streams."""
    return np.random.default_rng(derive_seed(parent_seed, name))


class SeedSequenceNamer:
    """Hands out named child generators from one experiment seed.

    Asking twice for the same name returns generators with identical
    streams; distinct names give statistically independent streams.
    """

    def __init__(self, seed: int | None = None):
        self.seed = DEFAULT_SEED if seed is None else seed

    def rng(self, name: str) -> np.random.Generator:
        """Return the child generator registered under ``name``."""
        return child_rng(self.seed, name)

    def seed_for(self, name: str) -> int:
        """Return the derived integer seed for ``name``."""
        return derive_seed(self.seed, name)
