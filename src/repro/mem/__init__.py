"""Simulated physical memory and per-process address spaces.

Provides page-granular physical allocation, virtual-to-physical mapping,
shared segments (the prerequisite of the data-reuse covert channels) and
huge pages (which some prior channels require and our threat model does
not, Section 4.1).
"""

from .address import (
    AddressFields,
    cache_line_index,
    line_address,
    offset_bits,
    page_number,
    set_index,
    tag_bits,
)
from .allocator import (
    AddressSpace,
    Allocation,
    PhysicalMemory,
    SharedSegment,
)

__all__ = [
    "AddressFields",
    "AddressSpace",
    "Allocation",
    "PhysicalMemory",
    "SharedSegment",
    "cache_line_index",
    "line_address",
    "offset_bits",
    "page_number",
    "set_index",
    "tag_bits",
]
