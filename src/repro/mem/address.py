"""Address arithmetic for the cache and memory models.

All addresses are integers (physical unless stated otherwise).  The
helpers here isolate the bit-slicing conventions — line offset, set
index, tag — so cache geometry changes stay local to configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

LINE_BYTES = 64
LINE_SHIFT = 6  # log2(LINE_BYTES)


def offset_bits(address: int, line_bytes: int = LINE_BYTES) -> int:
    """The byte offset of ``address`` within its cache line."""
    return address & (line_bytes - 1)


def line_address(address: int, line_bytes: int = LINE_BYTES) -> int:
    """The address rounded down to its cache-line base."""
    return address & ~(line_bytes - 1)


def cache_line_index(address: int, line_bytes: int = LINE_BYTES) -> int:
    """The global line number (address / line size)."""
    return address // line_bytes


def set_index(address: int, num_sets: int,
              line_bytes: int = LINE_BYTES) -> int:
    """The set a physically-indexed cache maps ``address`` to."""
    return (address // line_bytes) % num_sets


def tag_bits(address: int, num_sets: int,
             line_bytes: int = LINE_BYTES) -> int:
    """The tag stored alongside the line (bits above the index)."""
    return address // (line_bytes * num_sets)


def page_number(address: int, page_bytes: int) -> int:
    """The page frame / virtual page number containing ``address``."""
    return address // page_bytes


@dataclass(frozen=True)
class AddressFields:
    """A decoded physical address for a particular cache geometry."""

    address: int
    line: int
    set: int
    tag: int
    offset: int

    @classmethod
    def decode(cls, address: int, num_sets: int,
               line_bytes: int = LINE_BYTES) -> "AddressFields":
        """Split ``address`` into (line, set, tag, offset) fields."""
        return cls(
            address=address,
            line=cache_line_index(address, line_bytes),
            set=set_index(address, num_sets, line_bytes),
            tag=tag_bits(address, num_sets, line_bytes),
            offset=offset_bits(address, line_bytes),
        )
