"""Physical frame allocation and per-process address spaces.

The model is deliberately OS-like:

* :class:`PhysicalMemory` hands out page frames, optionally constrained
  to a NUMA node (socket).  The coarse-grained partitioning defense of
  Section 4.4 enforces a *NUMA-strict* policy — a domain pinned to
  socket 1 cannot obtain (or map) frames on socket 0.
* :class:`AddressSpace` is one process's view: virtual pages mapped to
  frames.  Translation is what the cache hierarchy consumes.
* :class:`SharedSegment` maps the *same* frames into two address spaces,
  which is the prerequisite the data-reuse channels (Flush+Reload and
  friends) need and that the paper's threat model excludes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MemoryError_


@dataclass(frozen=True)
class Allocation:
    """A contiguous virtual allocation inside one address space."""

    virtual_base: int
    size_bytes: int
    page_bytes: int
    numa_node: int

    @property
    def virtual_end(self) -> int:
        return self.virtual_base + self.size_bytes

    def addresses(self, stride: int) -> list[int]:
        """Virtual addresses at ``stride``-byte intervals across the
        allocation (handy for building access patterns)."""
        return list(range(self.virtual_base, self.virtual_end, stride))


class PhysicalMemory:
    """Page-frame allocator over the platform's physical memory.

    Frames are dealt out with a deterministic but non-trivial placement
    (a linear-congruential walk over the frame space) so that physically
    indexed cache sets receive a realistic spread of allocations without
    needing a random source.
    """

    def __init__(self, total_bytes: int, page_bytes: int,
                 num_numa_nodes: int = 1) -> None:
        if total_bytes % page_bytes != 0:
            raise MemoryError_("physical memory must be whole pages")
        if num_numa_nodes <= 0:
            raise MemoryError_("need at least one NUMA node")
        self.page_bytes = page_bytes
        self.num_numa_nodes = num_numa_nodes
        self._frames_per_node = total_bytes // page_bytes // num_numa_nodes
        self._allocated: list[set[int]] = [set() for _ in
                                           range(num_numa_nodes)]
        # Per-node placement cursor; coprime stride walks all frames.
        self._cursor: list[int] = [0] * num_numa_nodes
        self._stride = self._coprime_stride(self._frames_per_node)

    @staticmethod
    def _coprime_stride(n: int) -> int:
        """A stride coprime with ``n`` that scatters consecutive frames."""
        import math
        candidate = max(3, n // 7) | 1
        while math.gcd(candidate, n) != 1:
            candidate += 2
        return candidate

    @property
    def frames_per_node(self) -> int:
        return self._frames_per_node

    def frames_allocated(self, numa_node: int = 0) -> int:
        """Number of frames currently allocated on a node."""
        return len(self._allocated[numa_node])

    def _node_base(self, numa_node: int) -> int:
        return numa_node * self._frames_per_node

    def allocate_frames(self, count: int, numa_node: int = 0) -> list[int]:
        """Allocate ``count`` frames on a node; returns frame numbers.

        Raises :class:`MemoryError_` when the node is exhausted.
        """
        if not 0 <= numa_node < self.num_numa_nodes:
            raise MemoryError_(f"no such NUMA node {numa_node}")
        allocated = self._allocated[numa_node]
        if len(allocated) + count > self._frames_per_node:
            raise MemoryError_(
                f"NUMA node {numa_node} out of frames "
                f"({count} requested, "
                f"{self._frames_per_node - len(allocated)} free)"
            )
        frames: list[int] = []
        cursor = self._cursor[numa_node]
        while len(frames) < count:
            cursor = (cursor + self._stride) % self._frames_per_node
            if cursor not in allocated:
                allocated.add(cursor)
                frames.append(self._node_base(numa_node) + cursor)
        self._cursor[numa_node] = cursor
        return frames

    def allocate_contiguous(self, count: int, numa_node: int = 0) -> int:
        """Allocate ``count`` physically consecutive frames.

        Scans aligned candidate runs, mirroring how the OS huge-page
        pool hands out compound pages.  Returns the first (global)
        frame number; raises :class:`MemoryError_` when fragmentation
        leaves no run.
        """
        if not 0 <= numa_node < self.num_numa_nodes:
            raise MemoryError_(f"no such NUMA node {numa_node}")
        if count <= 0:
            raise MemoryError_("need a positive frame count")
        allocated = self._allocated[numa_node]
        for start in range(0, self._frames_per_node - count + 1, count):
            if all((start + i) not in allocated for i in range(count)):
                for i in range(count):
                    allocated.add(start + i)
                return self._node_base(numa_node) + start
        raise MemoryError_(
            f"no contiguous run of {count} frames left on node "
            f"{numa_node}"
        )

    def free_frames(self, frames: list[int]) -> None:
        """Return frames to the allocator."""
        for frame in frames:
            node = frame // self._frames_per_node
            local = frame % self._frames_per_node
            self._allocated[node].discard(local)

    def frame_address(self, frame: int) -> int:
        """Physical base address of a frame."""
        return frame * self.page_bytes


@dataclass
class SharedSegment:
    """Physical frames mapped into more than one address space.

    ``owner_domain`` records the security domain that created the
    segment: partitioned platforms refuse to map it into a different
    domain (sharing across partitions would defeat the partition).
    """

    frames: list[int]
    page_bytes: int
    owner_domain: int = 0
    mappings: dict[str, int] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return len(self.frames) * self.page_bytes


class AddressSpace:
    """One process's virtual memory: page table plus allocation arena."""

    _VIRTUAL_BASE = 0x5555_0000_0000

    def __init__(self, name: str, memory: PhysicalMemory,
                 numa_node: int = 0, *, numa_strict: bool = False) -> None:
        self.name = name
        self.memory = memory
        self.numa_node = numa_node
        self.numa_strict = numa_strict
        self._page_table: dict[int, int] = {}  # virtual page -> frame
        self._next_virtual = self._VIRTUAL_BASE
        self._allocations: list[Allocation] = []

    @property
    def page_bytes(self) -> int:
        return self.memory.page_bytes

    @property
    def allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._allocations)

    def _check_node(self, numa_node: int) -> None:
        if self.numa_strict and numa_node != self.numa_node:
            raise MemoryError_(
                f"{self.name}: NUMA-strict policy forbids allocating on "
                f"node {numa_node} (home node is {self.numa_node})"
            )

    def allocate(self, size_bytes: int,
                 numa_node: int | None = None) -> Allocation:
        """Allocate and map ``size_bytes`` (rounded up to whole pages)."""
        node = self.numa_node if numa_node is None else numa_node
        self._check_node(node)
        page = self.page_bytes
        pages = -(-size_bytes // page)
        frames = self.memory.allocate_frames(pages, node)
        base = self._next_virtual
        for i, frame in enumerate(frames):
            self._page_table[(base // page) + i] = frame
        self._next_virtual = base + pages * page
        allocation = Allocation(base, pages * page, page, node)
        self._allocations.append(allocation)
        return allocation

    def allocate_huge(self, size_bytes: int, huge_page_bytes: int,
                      numa_node: int | None = None) -> Allocation:
        """Allocate physically-contiguous huge pages.

        Many prior covert channels rely on huge pages because the
        2 MB-contiguous physical span exposes the full cache set index
        under attacker control (cited channels [36, 42, 63, 65]).
        UF-variation's threat model explicitly does *not* need them
        (Section 4.1); this exists for the baselines and for ablations.

        Each huge page is backed by a run of physically consecutive
        base frames, so virtual offsets map to physical offsets across
        the whole huge page.
        """
        node = self.numa_node if numa_node is None else numa_node
        self._check_node(node)
        if huge_page_bytes % self.page_bytes != 0:
            raise MemoryError_(
                "huge page size must be a multiple of the base page"
            )
        frames_per_huge = huge_page_bytes // self.page_bytes
        huge_pages = -(-size_bytes // huge_page_bytes)
        base = self._next_virtual
        # Align the virtual base to the huge page size so virtual
        # low-order bits equal physical low-order bits.
        if base % huge_page_bytes:
            base += huge_page_bytes - (base % huge_page_bytes)
        page = self.page_bytes
        for huge_index in range(huge_pages):
            first = self._reserve_contiguous(frames_per_huge, node)
            for i in range(frames_per_huge):
                virtual_page = (
                    (base + huge_index * huge_page_bytes) // page + i
                )
                self._page_table[virtual_page] = first + i
        self._next_virtual = base + huge_pages * huge_page_bytes
        allocation = Allocation(base, huge_pages * huge_page_bytes,
                                huge_page_bytes, node)
        self._allocations.append(allocation)
        return allocation

    def _reserve_contiguous(self, count: int, node: int) -> int:
        """Claim ``count`` physically consecutive frames on a node."""
        return self.memory.allocate_contiguous(count, node)

    def map_shared(self, segment: SharedSegment,
                   owner_node: int = 0) -> Allocation:
        """Map an existing shared segment into this address space."""
        self._check_node(owner_node)
        page = self.page_bytes
        if segment.page_bytes != page:
            raise MemoryError_("shared segment page size mismatch")
        base = self._next_virtual
        for i, frame in enumerate(segment.frames):
            self._page_table[(base // page) + i] = frame
        self._next_virtual = base + len(segment.frames) * page
        segment.mappings[self.name] = base
        allocation = Allocation(base, segment.size_bytes, page, owner_node)
        self._allocations.append(allocation)
        return allocation

    def create_shared(self, size_bytes: int,
                      numa_node: int | None = None) -> SharedSegment:
        """Allocate frames for a segment that other spaces may map."""
        node = self.numa_node if numa_node is None else numa_node
        self._check_node(node)
        pages = -(-size_bytes // self.page_bytes)
        frames = self.memory.allocate_frames(pages, node)
        segment = SharedSegment(frames=frames, page_bytes=self.page_bytes)
        return segment

    def translate(self, virtual: int) -> int:
        """Virtual-to-physical translation; raises on an unmapped page."""
        page = self.page_bytes
        frame = self._page_table.get(virtual // page)
        if frame is None:
            raise MemoryError_(
                f"{self.name}: page fault at virtual 0x{virtual:x}"
            )
        return frame * page + (virtual % page)

    def is_mapped(self, virtual: int) -> bool:
        """Whether the page containing ``virtual`` is mapped."""
        return (virtual // self.page_bytes) in self._page_table
