"""The single source of the package version.

Everything that reports a version — ``repro --version``, the ``version``
field stamped into every :class:`~repro.telemetry.manifest.RunManifest`
(hence every ``--json`` payload), the service daemon's ``/v1/version``
endpoint and the packaging metadata (``pyproject.toml`` reads this
attribute dynamically) — imports this string.  Bump it here and nowhere
else.

This lives in its own leaf module so layers that must not import the
top-level package (``repro.telemetry`` is imported *by* ``repro``) can
still stamp the version without a cycle.
"""

__version__ = "1.1.0"
