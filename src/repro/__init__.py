"""repro — a full reproduction of *Uncore Encore: Covert Channels
Exploiting Uncore Frequency Scaling* (Guo, Cao, Xin, Zhang, Yang;
MICRO 2023) on a simulated dual-socket Skylake-SP platform.

Quick start::

    from repro import System, UFVariationChannel, ChannelConfig
    from repro.units import ms

    system = System(seed=7)
    channel = UFVariationChannel(
        system, config=ChannelConfig(interval_ns=ms(38))
    )
    result = channel.transmit([1, 1, 0, 1, 0, 0, 1, 0, 1, 1])
    print(result.received, result.error_rate, result.capacity_bps)

Layer map (bottom up):

* :mod:`repro.engine` — deterministic discrete-event simulation;
* :mod:`repro.mem`, :mod:`repro.cache`, :mod:`repro.noc`,
  :mod:`repro.cpu`, :mod:`repro.power` — the hardware substrates
  (memory, caches+directory, mesh/ring, cores/MSRs, UFS/PC-states);
* :mod:`repro.platform` — the assembled system and the unprivileged
  actor facade;
* :mod:`repro.workloads` — the paper's loops, stressors and victims;
* :mod:`repro.core` — **UF-variation**, the paper's contribution;
* :mod:`repro.channels` — ten prior covert channels and the Table 3
  comparison harness;
* :mod:`repro.sidechannel` — file-size profiling and website
  fingerprinting (Section 5);
* :mod:`repro.defenses` — the Section 6.1 countermeasures;
* :mod:`repro.analysis` — capacity math, statistics, table rendering;
* :mod:`repro.telemetry` — the observational metrics registry and run
  manifests;
* :mod:`repro.trace` — trace capture, the content-addressed corpus
  store and deterministic replay;
* :mod:`repro.validate` — the scenario fuzzer, invariant oracles and
  differential checks behind ``repro validate``;
* :mod:`repro.resilience` — retry policies, checkpoint/resume, the
  trace-store circuit breaker, adaptive ARQ and the ``repro chaos``
  fault matrix;
* :mod:`repro.service` — the experiment daemon (``repro serve``):
  async HTTP/JSON job API, fair multi-tenant queue, work-stealing
  worker pools, the sharded trace store and result cache, and the
  sync/async clients.

Import surface: this top-level package re-exports the working set —
the system (:class:`System`, :class:`PlatformConfig`,
:func:`default_platform_config`), the channel
(:class:`UFVariationChannel`, :class:`ChannelConfig`), the uniform
experiment API (:func:`capacity_sweep` → :class:`SweepResult`,
:class:`ExperimentContext`), the telemetry registry
(:class:`MetricsRegistry`) and the trace store
(:class:`TraceStore`).  Everything else lives one level down in its
layer module.
"""

from ._version import __version__
from .config import (
    PlatformConfig,
    default_platform_config,
    platform_summary,
    single_socket_config,
)
from .platform import Actor, SecurityConfig, System
from .core import (
    ChannelConfig,
    ExperimentContext,
    SenderMode,
    SweepResult,
    TransmissionResult,
    UFReceiver,
    UFSender,
    UFVariationChannel,
    UncoreFrequencyProbe,
    capacity_sweep,
    capacity_under_stress,
)
from .telemetry import MetricsRegistry
from .trace import TraceStore
from .resilience import Checkpoint, CircuitBreaker, RetryPolicy
from .errors import (
    ChannelError,
    ConfigError,
    PrerequisiteError,
    PrivilegeError,
    ReproError,
    ResilienceError,
    TraceError,
    ValidationError,
)

__all__ = [
    "Actor",
    "ChannelConfig",
    "ChannelError",
    "Checkpoint",
    "CircuitBreaker",
    "ConfigError",
    "ExperimentContext",
    "MetricsRegistry",
    "PlatformConfig",
    "PrerequisiteError",
    "PrivilegeError",
    "ReproError",
    "ResilienceError",
    "RetryPolicy",
    "SecurityConfig",
    "SenderMode",
    "SweepResult",
    "System",
    "TraceError",
    "TraceStore",
    "TransmissionResult",
    "UFReceiver",
    "UFSender",
    "UFVariationChannel",
    "UncoreFrequencyProbe",
    "ValidationError",
    "__version__",
    "capacity_sweep",
    "capacity_under_stress",
    "default_platform_config",
    "platform_summary",
    "single_socket_config",
]
