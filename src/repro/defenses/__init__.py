"""Countermeasures against UFS channels (Section 6.1).

Four defenses, with the paper's conclusions:

* **fixed frequency** — min == max in ``UNCORE_RATIO_LIMIT`` disables
  UFS and kills the channel, but costs either energy (fixed high,
  ~7 % extra on analytics workloads) or performance (fixed low);
* **randomized frequency** — re-fix a random operating point every
  epoch: secure with a better energy/performance balance;
* **restricted range** — a narrow UFS window blunts the *side channel*
  (traces become hard to distinguish) but does NOT stop UF-variation:
  the 10 ms / 100 MHz dynamics inside the window are unchanged;
* **busy uncore** — a background thread pinning the uncore at
  ``freq_max`` removes the modulation entirely.
"""

from .countermeasures import (
    BusyUncoreDefense,
    RandomizedFrequencyDefense,
    apply_fixed_frequency,
    apply_restricted_range,
    disable_current_throttling,
    disable_turbo,
    lock_duty_cycle,
)
from .evaluation import (
    DefenseReport,
    ModulationDefenseCell,
    analytics_energy_overhead,
    channel_under_defense,
    evaluate_defenses,
    modulation_channel_under_defense,
    modulation_defense_matrix,
)

__all__ = [
    "BusyUncoreDefense",
    "DefenseReport",
    "ModulationDefenseCell",
    "RandomizedFrequencyDefense",
    "analytics_energy_overhead",
    "apply_fixed_frequency",
    "apply_restricted_range",
    "channel_under_defense",
    "disable_current_throttling",
    "disable_turbo",
    "evaluate_defenses",
    "lock_duty_cycle",
    "modulation_channel_under_defense",
    "modulation_defense_matrix",
]
