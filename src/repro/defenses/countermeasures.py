"""The Section 6.1 countermeasure mechanisms.

All of them drive the real control surfaces the paper names: the
``UNCORE_RATIO_LIMIT`` MSR (for fixing/restricting/randomizing the
frequency window) or an ordinary background workload (for the
busy-uncore approach).
"""

from __future__ import annotations

import numpy as np

from ..cpu.msr import MSR_UNCORE_RATIO_LIMIT, encode_uncore_ratio_limit
from ..engine import PeriodicTask
from ..errors import DefenseError
from ..platform.system import System
from ..units import ms
from ..workloads.loops import TrafficLoop


def apply_fixed_frequency(system: System, freq_mhz: int,
                          socket_id: int | None = None) -> None:
    """Disable UFS by fixing min == max (system software, ring 0)."""
    if freq_mhz % 100 != 0:
        raise DefenseError("uncore operating points are 100 MHz apart")
    targets = (
        range(system.num_sockets) if socket_id is None else [socket_id]
    )
    value = encode_uncore_ratio_limit(freq_mhz, freq_mhz)
    for sid in targets:
        system.write_msr(sid, MSR_UNCORE_RATIO_LIMIT, value,
                         privileged=True)


def apply_restricted_range(system: System, min_mhz: int, max_mhz: int,
                           socket_id: int | None = None) -> None:
    """Narrow the UFS window (keeps UFS enabled when min < max)."""
    if min_mhz > max_mhz:
        raise DefenseError("min frequency exceeds max frequency")
    targets = (
        range(system.num_sockets) if socket_id is None else [socket_id]
    )
    value = encode_uncore_ratio_limit(min_mhz, max_mhz)
    for sid in targets:
        system.write_msr(sid, MSR_UNCORE_RATIO_LIMIT, value,
                         privileged=True)


class RandomizedFrequencyDefense:
    """Periodically re-fix the uncore at a random operating point.

    "Every certain period of time, the system software randomly selects
    a frequency (from within the allowed frequency range) to set as
    the uncore frequency" (Section 6.1).  UFS stays disabled (min ==
    max at all times); only the fixed point jumps around, so no
    workload-driven signal survives while the average frequency — and
    hence energy — sits between the extremes.
    """

    def __init__(self, system: System, *, period_ms: float = 100.0,
                 rng: np.random.Generator | None = None) -> None:
        self.system = system
        self.rng = rng if rng is not None else system.namer.rng(
            "random-freq-defense"
        )
        self._points = system.config.ufs.frequency_points_mhz
        self._repick()
        self._task = PeriodicTask(
            system.engine,
            ms(period_ms),
            self._repick,
            name="random-freq-defense",
        )

    def _repick(self) -> None:
        freq = int(self._points[self.rng.integers(len(self._points))])
        apply_fixed_frequency(self.system, freq)

    def stop(self) -> None:
        """Disarm the defense (the last fixed point remains)."""
        self._task.stop()


def disable_turbo(system: System,
                  socket_id: int | None = None) -> None:
    """Disable Turbo Boost (BIOS / ``MSR_TURBO_ACTIVATION_RATIO``).

    The core ceiling pins at the base frequency and stops following
    the active-core count, which is the whole TurboCC signal (arxiv
    2007.07046 proposes exactly this as the mitigation).
    """
    targets = (
        range(system.num_sockets) if socket_id is None else [socket_id]
    )
    for sid in targets:
        system.socket(sid).modulation.turbo.enabled = False


def disable_current_throttling(system: System,
                               socket_id: int | None = None) -> None:
    """Provision the regulator so current excursions never throttle.

    Models the per-core voltage-regulator fix the IChannels paper
    (arxiv 2106.05050) recommends: the ladder's desired state is
    forced to zero, so draw swings stop reaching the receiver's
    instruction throughput.
    """
    targets = (
        range(system.num_sockets) if socket_id is None else [socket_id]
    )
    for sid in targets:
        system.socket(sid).modulation.current.enabled = False


def lock_duty_cycle(system: System,
                    socket_id: int | None = None) -> None:
    """Revoke ``IA32_CLOCK_MODULATION`` from tenants.

    The duty level is pinned at its current value; further requests
    raise :class:`~repro.errors.PrerequisiteError`, so a duty-cycle
    sender simply cannot deploy.
    """
    targets = (
        range(system.num_sockets) if socket_id is None else [socket_id]
    )
    for sid in targets:
        system.socket(sid).modulation.clockmod.lock()


class BusyUncoreDefense:
    """Pin the uncore at freq_max with a background stressing thread.

    "One can use a background thread that is always stressing the
    uncore to make it stay at freq_max" (Section 6.1).  One far-slice
    traffic loop suffices: its interconnect demand alone targets the
    maximum frequency (Figure 3, 3-hop row).
    """

    def __init__(self, system: System, *, socket_id: int = 0,
                 core_id: int | None = None) -> None:
        self.system = system
        socket = system.socket(socket_id)
        if core_id is None:
            free = [c.core_id for c in socket.cores if c.owner is None]
            if not free:
                raise DefenseError("no free core for the busy thread")
            core_id = free[-1]
        self.thread = TrafficLoop("busy-uncore-defense", hops=3)
        system.launch(self.thread, socket_id, core_id)

    def stop(self) -> None:
        """Terminate the background thread."""
        self.system.terminate(self.thread)
