"""Quantitative evaluation of the Section 6.1 countermeasures.

Three questions, matching the paper's discussion:

1. Does the defense stop UF-variation?  (Fixed, randomized and
   busy-uncore do; a restricted-but-nonempty range does not.)
2. What does it cost?  (Fixing at freq_max costs ~7 % uncore energy on
   an analytics workload; fixing low costs performance.)
3. Does restricting the range at least blunt the side channel?
   (Yes — the fingerprinting accuracy collapses with a <= 0.2 GHz
   window.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PlatformConfig, default_platform_config
from ..core.channel import UFVariationChannel
from ..core.context import ExperimentContext
from ..core.evaluation import random_bits
from ..core.protocol import ChannelConfig
from ..engine.parallel import Trial, TrialFailure, run_trials
from ..errors import ResilienceError
from ..platform.system import System
from ..units import ms, seconds
from ..workloads.analytics import AnalyticsWorkload
from .countermeasures import (
    BusyUncoreDefense,
    RandomizedFrequencyDefense,
    apply_fixed_frequency,
)

#: The defense configurations of the Section 6.1 study.
DEFENSE_KEYS = (
    "none",
    "fixed_max",
    "fixed_mid",
    "randomized",
    "restricted_1500_1700",
    "busy_uncore",
    "performance_governor",
)


@dataclass(frozen=True)
class DefenseReport:
    """UF-variation's fate under one countermeasure."""

    defense: str
    error_rate: float
    capacity_bps: float

    @property
    def channel_stopped(self) -> bool:
        """Stopped = decoding at (or near) chance."""
        return self.error_rate >= 0.25


def _defense_runner(resolved: str):
    """The module-level (hence picklable) batch runner for a backend."""
    if resolved == "batch":
        from ..fastpath.batch import batch_defense_reports

        return batch_defense_reports
    from ..fastpath.analytical import analytical_defense_reports

    return analytical_defense_reports


def channel_under_defense(defense: str, *, bits: int = 80,
                          interval_ms: float = 38.0,
                          seed: int = 0,
                          platform: PlatformConfig | None = None,
                          backend: str | None = None,
                          ) -> DefenseReport:
    """Deploy UF-variation against one active countermeasure.

    ``platform`` overrides the base platform the defense modifies
    (default: the paper's Table 1 system).  ``backend`` picks the
    simulator (``"des"`` default; ``"batch"`` is bit-identical,
    ``"analytical"`` closed-form).
    """
    from ..fastpath.backend import DefenseRequest, resolve_backend

    resolved = resolve_backend(backend, experiment="channel_under_defense")
    if resolved != "des":
        return _defense_runner(resolved)([DefenseRequest(
            defense=defense,
            bits=bits,
            interval_ms=interval_ms,
            seed=seed,
            platform=platform,
        )])[0]
    if platform is None:
        platform = default_platform_config()
    if defense == "restricted_1500_1700":
        # A narrowed window is part of the pre-agreed calibration: the
        # attacker knows the platform policy (Kerckhoffs).
        platform = platform.with_ufs(min_freq_mhz=1500,
                                     max_freq_mhz=1700)
    system = System(platform, seed=seed)
    active = None
    if defense == "fixed_max":
        apply_fixed_frequency(system, platform.ufs.max_freq_mhz)
    elif defense == "fixed_mid":
        apply_fixed_frequency(system, 1800)
    elif defense == "randomized":
        active = RandomizedFrequencyDefense(system)
    elif defense == "busy_uncore":
        active = BusyUncoreDefense(system, core_id=15)
    elif defense == "performance_governor":
        # Not in the paper's list, but suggested by Section 2.2.1:
        # an *active* core above base frequency pins the uncore at the
        # maximum.  It turns out to be a leaky defense: UFS re-engages
        # whenever every turbo core sleeps, and a duty-cycled receiver
        # (ours probes ~10 ms per interval) leaves exactly such gaps —
        # the measured BER lands near the functionality border instead
        # of at chance.
        from ..cpu.dvfs import DvfsGovernor, GovernorPolicy

        active = DvfsGovernor(
            system, policy=GovernorPolicy.PERFORMANCE
        )
    elif defense not in ("none", "restricted_1500_1700"):
        raise ValueError(f"unknown defense {defense!r}")

    channel = UFVariationChannel(
        system, config=ChannelConfig(interval_ns=ms(interval_ms))
    )
    payload = random_bits(bits, seed, f"defense-{defense}")
    result = channel.transmit(payload)
    channel.shutdown()
    if active is not None:
        active.stop()
    system.stop()
    return DefenseReport(
        defense=defense,
        error_rate=result.error_rate,
        capacity_bps=result.capacity_bps,
    )


def evaluate_defenses(*, bits: int = 80, seed: int = 0,
                      defenses: tuple[str, ...] = DEFENSE_KEYS,
                      platform: PlatformConfig | None = None,
                      workers: int | None = 1,
                      context: ExperimentContext | None = None,
                      checkpoint_dir=None,
                      retry=None,
                      backend: str | None = None,
                      ) -> list[DefenseReport]:
    """UF-variation under every countermeasure.

    Each defense deploys its own seeded system, so the reports are
    independent trials: ``workers > 1`` evaluates them in parallel
    processes and still returns them in ``defenses`` order,
    bit-identical to the serial run.  ``backend`` picks the simulator
    per :func:`~repro.fastpath.backend.resolve_backend`; the vectorized
    backends fan chunks out over ``workers`` through
    :func:`~repro.engine.parallel.run_batches`.

    ``checkpoint_dir`` / ``retry`` behave exactly as in
    :func:`repro.core.evaluation.capacity_sweep`: completed defenses
    are checkpointed for bit-identical resume, transient crashes are
    retried (DES path only), and a defense still failed after its
    attempts raises :class:`~repro.errors.ResilienceError`.
    """
    ctx = ExperimentContext.coalesce(
        context, platform=platform, seed=seed, workers=workers,
        backend=backend,
    )
    from ..fastpath.backend import DefenseRequest, resolve_backend

    resolved = resolve_backend(ctx.backend, experiment="evaluate_defenses")
    labels = [f"defense-{defense}" for defense in defenses]
    checkpoint = None
    if checkpoint_dir is not None:
        from ..resilience.checkpoint import Checkpoint

        effective = (ctx.platform if ctx.platform is not None
                     else default_platform_config())
        checkpoint = Checkpoint.for_experiment(
            checkpoint_dir, "evaluate_defenses",
            platform=effective,
            params=dict(bits=bits, defenses=list(defenses)),
            seed=ctx.seed,
            backend=resolved,
        )
    if resolved != "des":
        from ..engine.parallel import run_batches

        requests = [
            DefenseRequest(
                defense=defense,
                bits=bits,
                seed=ctx.seed,
                platform=ctx.platform,
            )
            for defense in defenses
        ]
        return run_batches(
            requests, _defense_runner(resolved),
            workers=ctx.workers, labels=labels, checkpoint=checkpoint,
        )
    trials = [
        Trial(channel_under_defense, dict(
            defense=defense,
            bits=bits,
            seed=ctx.seed,
            platform=ctx.platform,
            backend="des",
        ), label=label)
        for defense, label in zip(defenses, labels)
    ]
    reports = run_trials(
        trials, workers=ctx.workers,
        on_error="retry" if retry is not None else "raise",
        retry=retry, checkpoint=checkpoint,
    )
    failed = [r for r in reports if isinstance(r, TrialFailure)]
    if failed:
        raise ResilienceError(
            f"defense evaluation lost {len(failed)} of {len(reports)} "
            "defenses after retries: "
            + ", ".join(f.label or str(f.index) for f in failed)
        )
    return reports


#: Defense keys of the modulation-channel study.  Deliberately NOT part
#: of :data:`DEFENSE_KEYS` — that tuple is shared with the vectorized
#: defense backends, which model only UF-variation.
MODULATION_DEFENSE_KEYS = (
    "none",
    "disable_turbo",
    "no_current_throttle",
    "lock_duty_cycle",
)

#: The modulation channel each targeted defense is designed to stop.
_DEFENSE_TARGETS = {
    "disable_turbo": "TurboCC",
    "no_current_throttle": "IChannels",
    "lock_duty_cycle": "ClockModCovert",
}


@dataclass(frozen=True)
class ModulationDefenseCell:
    """One modulation channel against one countermeasure."""

    channel: str
    defense: str
    error_rate: float | None
    note: str = ""

    @property
    def channel_stopped(self) -> bool:
        """Stopped = cannot deploy, or decoding at (or near) chance."""
        return self.error_rate is None or self.error_rate >= 0.25

    @property
    def targeted(self) -> bool:
        """Whether this defense specifically targets this channel."""
        return _DEFENSE_TARGETS.get(self.defense) == self.channel


def modulation_channel_under_defense(
        channel: str, defense: str, *, bits: int = 24,
        seed: int = 0) -> ModulationDefenseCell:
    """Deploy one modulation channel against one countermeasure.

    DES only: the modulation layer has no vectorized counterpart (the
    channels are not UF-variation), so this runs the event-driven
    simulator unconditionally.
    """
    from ..channels.comparison import CHANNELS_BY_NAME
    from ..errors import ChannelError, PrerequisiteError
    from .countermeasures import (
        disable_current_throttling,
        disable_turbo,
        lock_duty_cycle,
    )

    channel_cls = CHANNELS_BY_NAME[channel]
    system = System(seed=seed)
    if defense == "disable_turbo":
        disable_turbo(system)
    elif defense == "no_current_throttle":
        disable_current_throttling(system)
    elif defense == "lock_duty_cycle":
        lock_duty_cycle(system)
    elif defense != "none":
        raise ValueError(f"unknown modulation defense {defense!r}")
    try:
        live = channel_cls(system)
    except (PrerequisiteError, ChannelError) as exc:
        system.stop()
        return ModulationDefenseCell(
            channel=channel, defense=defense, error_rate=None,
            note=f"cannot deploy: {exc}",
        )
    payload = random_bits(bits, seed, f"modulation-{channel}-{defense}")
    result = live.transmit(payload)
    live.shutdown()
    system.stop()
    return ModulationDefenseCell(
        channel=channel, defense=defense,
        error_rate=result.error_rate,
    )


def modulation_defense_matrix(*, bits: int = 24, seed: int = 0,
                              workers: int | None = 1,
                              ) -> list[ModulationDefenseCell]:
    """Every modulation channel against every modulation defense.

    The matrix demonstrates defense *specificity*: each targeted
    countermeasure stops exactly its own channel and leaves the other
    two functional, because the three mechanisms (turbo bins, the
    regulator ladder, the duty grid) are independent control surfaces.
    Cells are independent seeded trials in row-major order —
    ``workers > 1`` is bit-identical to the serial run.
    """
    channels = tuple(_DEFENSE_TARGETS.values())
    trials = [
        Trial(modulation_channel_under_defense, dict(
            channel=channel, defense=defense, bits=bits, seed=seed,
        ))
        for channel in channels
        for defense in MODULATION_DEFENSE_KEYS
    ]
    return run_trials(trials, workers=workers)


@dataclass(frozen=True)
class EnergyOverheadResult:
    """Uncore energy of a fixed-max policy relative to UFS."""

    ufs_joules: float
    fixed_max_joules: float
    duration_s: float

    @property
    def overhead_percent(self) -> float:
        if self.ufs_joules == 0.0:
            return 0.0
        return 100.0 * (self.fixed_max_joules / self.ufs_joules - 1.0)


def analytics_energy_overhead(*, workers: int = 8,
                              duration_s: float = 10.0,
                              seed: int = 0) -> EnergyOverheadResult:
    """The paper's CloudSuite measurement: fixing the uncore at
    ``freq_max`` costs ~7 % more energy than UFS on analytics.

    The same seeded workload schedule runs twice — once under UFS, once
    with the frequency fixed at the maximum — and the uncore energy is
    integrated from the frequency timeline either way.
    """

    def run(fixed_max: bool) -> float:
        system = System(seed=seed)
        if fixed_max:
            apply_fixed_frequency(
                system, system.config.ufs.max_freq_mhz
            )
        for index in range(workers):
            # All workers share one schedule stream: graph analytics is
            # bulk-synchronous, so scan phases and barrier waits align
            # across the worker pool.
            worker = AnalyticsWorkload(
                f"analytics-{index}",
                system.namer.rng("analytics-superstep"),
            )
            system.launch(worker, 0, index)
        start = system.now
        system.run_for(seconds(duration_s))
        energy = system.energy_meter.energy_joules(
            system.socket(0).pmu.timeline, start, system.now
        )
        system.stop()
        return energy

    return EnergyOverheadResult(
        ufs_joules=run(fixed_max=False),
        fixed_max_joules=run(fixed_max=True),
        duration_s=duration_s,
    )
