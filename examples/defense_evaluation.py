"""Evaluate the Section 6.1 countermeasures against UF-variation.

Runs the channel against every defense, reports which ones stop it,
and measures the energy cost of the fixed-at-maximum policy on a
bulk-synchronous analytics workload.

Run:  python examples/defense_evaluation.py
"""

from repro.analysis import format_table
from repro.defenses import analytics_energy_overhead, evaluate_defenses


def main() -> None:
    print("running UF-variation against each countermeasure ...")
    reports = evaluate_defenses(bits=60, seed=21)
    rows = [
        [
            r.defense,
            f"{100 * r.error_rate:.1f}",
            f"{r.capacity_bps:.1f}",
            "stopped" if r.channel_stopped else "STILL FUNCTIONAL",
        ]
        for r in reports
    ]
    print(format_table(
        ["defense", "BER (%)", "capacity (bit/s)", "verdict"], rows
    ))
    print(
        "\nnote the paper's key finding: restricting the UFS range "
        "does NOT stop the covert channel\n(the 10 ms / 100 MHz "
        "dynamics survive inside any non-degenerate window)."
    )

    print("\nmeasuring the fixed-at-max energy cost on analytics ...")
    energy = analytics_energy_overhead(duration_s=10.0, seed=4)
    print(
        f"  UFS: {energy.ufs_joules:.1f} J, fixed at 2.4 GHz: "
        f"{energy.fixed_max_joules:.1f} J -> overhead "
        f"{energy.overhead_percent:.1f} % (paper: ~7 %)"
    )


if __name__ == "__main__":
    main()
