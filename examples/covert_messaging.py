"""Reliable covert messaging: framing + FEC + ARQ over UF-variation.

The raw channel delivers bits with a rate-dependent error rate; a real
exfiltration deployment wraps it in the protocol stack from
``repro.core.framing``: Hamming(7,4) forward error correction, a block
interleaver against the channel's bursty errors, a self-synchronising
preamble and a stop-and-wait ARQ loop.  This example pushes a small
secret across the uncore at the aggressive 21 ms operating point and
reports the protocol-level statistics.

Run:  python examples/covert_messaging.py
"""

from repro import ChannelConfig, System, UFVariationChannel
from repro.core.framing import (
    encode_frame,
    frame_overhead_ratio,
    send_message_reliable,
)
from repro.units import ms

SECRET = b"key=0xDEADBEEF"


def main() -> None:
    system = System(seed=23)
    channel = UFVariationChannel(
        system, config=ChannelConfig(interval_ns=ms(21))
    )
    coded_bits = len(encode_frame(SECRET))
    print(f"payload: {SECRET!r} ({8 * len(SECRET)} bits)")
    print(f"frame:   {coded_bits} bits after FEC + interleaving "
          f"(overhead x{frame_overhead_ratio(len(SECRET)):.2f})")
    print(f"link:    {channel.config.raw_rate_bps:.1f} bit/s raw, "
          "cross-core")

    transfer = send_message_reliable(channel, SECRET, max_attempts=4)
    frame = transfer.frame
    print(f"\nattempts: {transfer.attempts}")
    print(f"FEC-corrected bits (final attempt): "
          f"{frame.corrected_bits}")
    print(f"received: {frame.payload!r} "
          f"(checksum {'ok' if frame.checksum_ok else 'BAD'})")
    seconds = system.now / 1e9
    print(f"total simulated time: {seconds:.2f} s -> net goodput "
          f"{8 * len(SECRET) / seconds:.1f} bit/s")

    channel.shutdown()
    system.stop()


if __name__ == "__main__":
    main()
