"""Characterize UFS the way Section 3 of the paper does.

Reads the uncore frequency through the privileged MSR path while
driving the platform with the paper's microbenchmark loops:

1. the stabilised frequency under traffic loops (Figure 3's rows);
2. the stalled-core rule (Figure 4);
3. the 100 MHz / ~10 ms ramp when a stalling loop starts (Figure 5);
4. the cross-socket coupling (Figure 7).

Run:  python examples/characterize_ufs.py
"""

import numpy as np

from repro import System
from repro.platform.tracing import frequency_trace, step_times_ms
from repro.units import ms
from repro.workloads import NopLoop, StallingLoop, TrafficLoop


def stabilized_frequency(threads: int, hops: int) -> float:
    system = System(seed=0)
    for index in range(threads):
        system.launch(TrafficLoop(f"t{index}", hops=hops), 0, index)
    system.run_ms(900)
    _, freqs = frequency_trace(
        system.socket(0).pmu.timeline, system.now - ms(300),
        system.now, ms(1),
    )
    system.stop()
    return float(np.median(freqs)) / 1000.0


def main() -> None:
    print("== Figure 3 (excerpt): stabilised frequency (GHz) ==")
    for threads, hops in ((1, 0), (3, 0), (1, 1), (7, 1), (1, 3)):
        freq = stabilized_frequency(threads, hops)
        print(f"  {threads} thread(s), {hops}-hop traffic -> "
              f"{freq:.1f} GHz")

    print("\n== Figure 4: the stalled-core rule ==")
    for stalled, unstalled in ((1, 0), (1, 2), (2, 3), (2, 4)):
        system = System(seed=0)
        core = 0
        for i in range(stalled):
            system.launch(StallingLoop(f"s{i}"), 0, core)
            core += 1
        for i in range(unstalled):
            system.launch(NopLoop(f"n{i}"), 0, core)
            core += 1
        system.run_ms(300)
        fraction = stalled / (stalled + unstalled)
        print(f"  {stalled} stalled + {unstalled} active -> "
              f"{system.uncore_frequency_mhz(0) / 1000:.1f} GHz "
              f"(stalled fraction {fraction:.2f})")
        system.stop()

    print("\n== Figure 5: ramp after the stalling loop starts ==")
    system = System(seed=0)
    system.run_ms(53)
    system.launch(StallingLoop("stall"), 0, 0)
    start = system.now
    system.run_ms(150)
    times, freqs = frequency_trace(
        system.socket(0).pmu.timeline, start, system.now, 200_000
    )
    for time_ms, frm, to in step_times_ms(times, freqs):
        print(f"  t={time_ms:6.1f} ms  {frm / 1000:.1f} -> "
              f"{to / 1000:.1f} GHz")

    from repro.analysis import labelled_trace

    _, trace0 = frequency_trace(
        system.socket(0).pmu.timeline, start, system.now, ms(2)
    )
    print("\n  " + labelled_trace("socket 0 ramp", trace0))

    print("\n== Figure 7: cross-socket coupling ==")
    print(f"  socket 0: {system.uncore_frequency_mhz(0) / 1000:.1f} "
          f"GHz, socket 1: "
          f"{system.uncore_frequency_mhz(1) / 1000:.1f} GHz "
          "(follower one step behind)")
    system.stop()


if __name__ == "__main__":
    main()
