"""Quickstart: send a covert message through UF-variation.

Builds the simulated dual-socket Skylake-SP platform, deploys the
UF-variation covert channel between two unprivileged processes on
different cores (Section 4 of the paper), and transmits an ASCII
message encoded bit by bit into the direction of the uncore-frequency
change.

Run:  python examples/quickstart.py
"""

from repro import ChannelConfig, System, UFVariationChannel
from repro.units import ms


def text_to_bits(text: str) -> list[int]:
    return [
        (byte >> shift) & 1
        for byte in text.encode()
        for shift in range(7, -1, -1)
    ]


def bits_to_text(bits: list[int]) -> str:
    data = bytearray()
    for offset in range(0, len(bits) - 7, 8):
        value = 0
        for bit in bits[offset:offset + 8]:
            value = (value << 1) | bit
        data.append(value)
    return data.decode(errors="replace")


def main() -> None:
    message = "UFS!"
    print(f"platform: simulated 2x Xeon Gold 6142, UFS 1.2-2.4 GHz")
    system = System(seed=7)

    # Sender on core 0, receiver on core 8 of socket 0.  A 28 ms
    # interval trades a little capacity for per-bit reliability; the
    # capacity-optimal 21 ms point (the paper's 46 bit/s) is noisier.
    channel = UFVariationChannel(
        system, config=ChannelConfig(interval_ns=ms(28))
    )

    bits = text_to_bits(message)
    print(f"sending {message!r} = {len(bits)} bits "
          f"at {channel.config.raw_rate_bps:.1f} bit/s raw ...")
    result = channel.transmit(bits)

    print(f"received: {bits_to_text(list(result.received))!r}")
    print(f"bit errors: {result.bit_errors}/{len(bits)} "
          f"(BER {100 * result.error_rate:.1f} %)")
    print(f"channel capacity: {result.capacity_bps:.1f} bit/s "
          "(paper: 46 bit/s cross-core)")
    print(f"simulated transmission time: "
          f"{result.duration_ns / 1e9:.2f} s")

    channel.shutdown()
    system.stop()


if __name__ == "__main__":
    main()
