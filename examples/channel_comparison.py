"""Compare UF-variation against prior uncore covert channels (Table 3).

Deploys every implemented covert channel — data reuse, set conflict,
interconnect contention, PMU contention, idle power — under the
baseline platform and under the partitioning defenses, and prints the
check/cross matrix.  This is a scaled-down version of the Table 3
benchmark (fewer scenarios, fewer bits).

Run:  python examples/channel_comparison.py
"""

from repro.analysis import format_table
from repro.channels import ALL_CHANNELS, evaluate_channel
from repro.channels.scenarios import scenario_by_key

SCENARIO_KEYS = ("baseline", "random_llc", "fine_partition",
                 "coarse_partition")


def main() -> None:
    scenarios = [scenario_by_key(key) for key in SCENARIO_KEYS]
    rows = []
    for channel_cls in ALL_CHANNELS:
        print(f"evaluating {channel_cls.name} ...")
        row = [channel_cls.name]
        for scenario in scenarios:
            cell = evaluate_channel(channel_cls, scenario, bits=16,
                                    seed=1)
            row.append("yes" if cell.functional else "no")
        rows.append(row)
    print()
    print(format_table(
        ["Channel"] + [s.label for s in scenarios],
        rows,
        title="Covert channels vs uncore defenses (Table 3 excerpt)",
    ))
    print(
        "\nUF-variation (and only the noise-fragile Uncore-idle) "
        "survives every partitioning and randomization defense."
    )


if __name__ == "__main__":
    main()
