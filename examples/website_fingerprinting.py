"""Website fingerprinting through the uncore frequency (Section 5).

The attacker pins a stalling helper and a non-stalling helper, probes
the uncore frequency every 3 ms through LLC latencies, and trains an
RNN to recognise which website a victim browser is loading.  This
example runs a scaled-down study (16 sites); the benchmark harness runs
40 (or 100 with REPRO_BENCH_FULL=1).

Run:  python examples/website_fingerprinting.py
"""

from repro.sidechannel import collect_dataset, run_fingerprinting_study
from repro.sidechannel.fingerprint import activity_separability
from repro.sidechannel.rnn import RnnConfig

NUM_SITES = 16


def main() -> None:
    print(f"collecting traces: {NUM_SITES} sites x 5 visits x 5 s "
          "(3 training + 2 attack-phase each) ...")
    dataset = collect_dataset(
        num_sites=NUM_SITES,
        train_visits=3,
        test_visits=2,
        trace_ms=5_000.0,
        seed=14,
    )
    print(f"  collected {len(dataset.train)} training and "
          f"{len(dataset.test)} attack traces")
    print(f"  trace separability (inter/intra site distance): "
          f"{activity_separability(dataset):.2f}")

    print("training the RNN classifier (numpy BPTT) ...")
    result = run_fingerprinting_study(
        dataset,
        rnn_config=RnnConfig(num_classes=NUM_SITES, epochs=400,
                             seed=14),
    )
    print(f"  RNN top-1 accuracy: {100 * result.top1:.1f} %  "
          "(paper, 100 sites: 82.18 %)")
    print(f"  RNN top-5 accuracy: {100 * result.top5:.1f} %  "
          "(paper, 100 sites: 91.48 %)")
    print(f"  kNN baseline top-1: {100 * result.knn_top1:.1f} %")


if __name__ == "__main__":
    main()
